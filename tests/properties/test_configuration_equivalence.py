"""Differential testing of the indexed Configuration against the naive oracle.

PR 10 replaced every hot ``Configuration`` read with columnar caches —
per-node load columns, running-set and suspend-image indices, a dirty set
feeding O(changed) incremental viability.  The caches are invisible by
construction, and this suite is the proof: Hypothesis drives an indexed
:class:`~repro.model.Configuration` and a retained
:class:`~repro.model.NaiveConfiguration` (the pre-index dict-walk
implementations) in lockstep through random mutation sequences —
add / place / migrate / sleep / terminate / demand churn / crash-evict /
node re-add — and asserts after *every* step that

* ``usage_of`` / ``free_capacity`` / ``total_usage`` / ``total_capacity``,
* ``viability_violations`` (and ``only_dirty=True`` against the full scan),
* ``placement()`` / ``vms_on`` / ``images_on`` / ``states()``

never diverge, and that an operation raising on one side raises the same
error on the other.  The whole suite runs under both column backends (numpy
and the pure-python fallback).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.model import (
    BACKEND_ENV,
    Configuration,
    NaiveConfiguration,
    Node,
    VirtualMachine,
)
from repro.model.columns import LoadColumns
from repro.sim.faults import evict_node

MEMORY_CHOICES = (256, 512, 1024)
NODE_MEMORY = 2048
MAX_NODES = 5
MAX_VMS = 8

#: Op kinds the sequences draw from; each op carries small integer operands
#: resolved against the *current* node/VM name universe at apply time, so a
#: drawn sequence stays meaningful as nodes crash and come back.
OPS = (
    "add_vm",
    "set_running",
    "migrate",
    "set_sleeping",
    "set_waiting",
    "set_terminated",
    "churn_demand",
    "crash_evict",
    "remove_node",
    "re_add_node",
)


@st.composite
def mutation_sequences(draw):
    node_count = draw(st.integers(min_value=2, max_value=MAX_NODES))
    vm_count = draw(st.integers(min_value=1, max_value=MAX_VMS))
    vms = [
        (
            f"vm{i}",
            draw(st.sampled_from(MEMORY_CHOICES)),
            draw(st.integers(min_value=0, max_value=2)),
        )
        for i in range(vm_count)
    ]
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(OPS),
                st.integers(min_value=0, max_value=31),
                st.integers(min_value=0, max_value=31),
            ),
            min_size=1,
            max_size=30,
        )
    )
    return node_count, vms, ops


def _build(cls, node_count, vms):
    configuration = cls(
        nodes=[
            Node(name=f"node-{i}", cpu_capacity=2, memory_capacity=NODE_MEMORY)
            for i in range(node_count)
        ]
    )
    for name, memory, cpu in vms:
        configuration.add_vm(
            VirtualMachine(name=name, memory=memory, cpu_demand=cpu)
        )
    return configuration


def _apply(configuration, op, a, b, node_universe, vm_universe):
    """Apply one drawn op; returns the exception type raised (or None)."""
    kind = op
    node = node_universe[a % len(node_universe)]
    vm = vm_universe[b % len(vm_universe)]
    try:
        if kind == "add_vm":
            configuration.add_vm(
                VirtualMachine(
                    name=f"extra{a}", memory=MEMORY_CHOICES[b % 3],
                    cpu_demand=a % 3,
                )
            )
        elif kind == "set_running":
            configuration.set_running(vm, node)
        elif kind == "migrate":
            configuration.migrate(vm, node)
        elif kind == "set_sleeping":
            configuration.set_sleeping(vm)
        elif kind == "set_waiting":
            configuration.set_waiting(vm)
        elif kind == "set_terminated":
            configuration.set_terminated(vm)
        elif kind == "churn_demand":
            current = configuration.vm(vm)
            configuration.replace_vm(current.with_cpu_demand(a % 4))
        elif kind == "crash_evict":
            evict_node(configuration, node)
        elif kind == "remove_node":
            configuration.remove_node(node)
        elif kind == "re_add_node":
            configuration.add_node(
                Node(name=node, cpu_capacity=2, memory_capacity=NODE_MEMORY)
            )
    except Exception as error:  # noqa: BLE001 - symmetry is the assertion
        return type(error)
    return None


def _assert_equivalent(indexed: Configuration, naive: NaiveConfiguration):
    assert indexed.node_names == naive.node_names
    assert indexed.vm_names == naive.vm_names
    assert indexed.placement() == naive.placement()
    assert indexed.states() == naive.states()
    assert indexed.total_usage() == naive.total_usage()
    assert indexed.total_capacity() == naive.total_capacity()
    for node in indexed.node_names:
        assert indexed.usage_of(node) == naive.usage_of(node)
        assert indexed.free_capacity(node) == naive.free_capacity(node)
        assert indexed.vms_on(node) == naive.vms_on(node)
        assert indexed.images_on(node) == naive.images_on(node)
    # Incremental first: if the dirty bookkeeping ever went stale the
    # incremental list would diverge from the naive full recomputation.
    incremental = indexed.viability_violations(only_dirty=True)
    full = indexed.viability_violations()
    assert incremental == full
    assert full == naive.viability_violations()
    assert indexed.is_viable() == naive.is_viable()


def _run_lockstep(sequence):
    node_count, vms, ops = sequence
    indexed = _build(Configuration, node_count, vms)
    naive = _build(NaiveConfiguration, node_count, vms)
    # The name universes never shrink: crashed nodes stay addressable so
    # re_add_node (and errors on evicted nodes) are exercised.
    node_universe = [f"node-{i}" for i in range(node_count)]
    vm_universe = [name for name, _, _ in vms] + [
        f"extra{a}" for a in range(32)
    ]
    for kind, a, b in ops:
        raised_indexed = _apply(
            indexed, kind, a, b, node_universe, vm_universe
        )
        raised_naive = _apply(naive, kind, a, b, node_universe, vm_universe)
        assert raised_indexed == raised_naive, (
            f"op {kind} diverged: indexed raised {raised_indexed}, "
            f"naive raised {raised_naive}"
        )
        _assert_equivalent(indexed, naive)
    # A copy must carry consistent caches too.
    _assert_equivalent(indexed.copy(), naive)


@settings(max_examples=150, deadline=None)
@given(mutation_sequences())
def test_indexed_configuration_matches_naive_oracle(sequence):
    _run_lockstep(sequence)


@settings(max_examples=75, deadline=None)
@given(mutation_sequences())
def test_indexed_configuration_matches_naive_oracle_python_backend(sequence):
    previous = os.environ.get(BACKEND_ENV)
    os.environ[BACKEND_ENV] = "python"
    try:
        _run_lockstep(sequence)
    finally:
        if previous is None:
            del os.environ[BACKEND_ENV]
        else:
            os.environ[BACKEND_ENV] = previous


def test_python_backend_env_actually_disables_numpy():
    previous = os.environ.get(BACKEND_ENV)
    os.environ[BACKEND_ENV] = "python"
    try:
        columns = LoadColumns()
        columns.add("n0", 2, 2048)
        assert isinstance(columns._cpu_usage, list)
    finally:
        if previous is None:
            del os.environ[BACKEND_ENV]
        else:
            os.environ[BACKEND_ENV] = previous


def test_crash_evict_under_churn_never_leaves_stale_loads():
    """Satellite regression: ``remove_node`` / fault eviction must drop the
    victim's cached column slot and dirty its co-resident bookkeeping, so a
    node re-added under the same name starts from a clean slate and the
    incremental scan never reports a load that died with the crash."""
    configuration = Configuration(
        nodes=[
            Node(name=f"node-{i}", cpu_capacity=2, memory_capacity=2048)
            for i in range(3)
        ]
    )
    for i in range(6):
        configuration.add_vm(
            VirtualMachine(name=f"vm{i}", memory=512, cpu_demand=1)
        )
        configuration.set_running(f"vm{i}", f"node-{i % 3}")
    # Overload node-0, observe it incrementally.
    configuration.replace_vm(
        configuration.vm("vm0").with_cpu_demand(2)
    )
    configuration.replace_vm(
        configuration.vm("vm3").with_cpu_demand(2)
    )
    assert [
        v.node for v in configuration.viability_violations(only_dirty=True)
    ] == ["node-0"]
    # Crash it mid-churn: the violation must vanish from the incremental
    # view immediately (the cached overload entry dies with the node).
    eviction = evict_node(configuration, "node-0")
    assert set(eviction.displaced_vms) == {"vm0", "vm3"}
    assert configuration.viability_violations(only_dirty=True) == []
    # Re-add the same name with a *smaller* capacity: the fresh node must
    # start empty (no stale usage), and new placements must account from
    # zero.
    configuration.add_node(
        Node(name="node-0", cpu_capacity=1, memory_capacity=1024)
    )
    assert configuration.usage_of("node-0").as_tuple() == (0, 0)
    assert configuration.vms_on("node-0") == ()
    configuration.set_running("vm0", "node-0")
    configuration.set_running("vm3", "node-0")
    incremental = configuration.viability_violations(only_dirty=True)
    assert [v.node for v in incremental] == ["node-0"]
    assert incremental == configuration.viability_violations()
    # And the displaced VM's old co-resident node accounts correctly after
    # the churn (vm0/vm3 left node-0's load behind exactly once).
    naive = NaiveConfiguration()
    for node in configuration.nodes:
        naive.add_node(node)
    for vm in configuration.vms:
        naive.add_vm(vm)
    for vm_name, host in configuration.placement().items():
        naive.set_running(vm_name, host)
    for node in configuration.node_names:
        assert configuration.usage_of(node) == naive.usage_of(node)


@pytest.mark.slow
def test_large_fleet_incremental_viability_matches_full(large_fleet_factory):
    """20k-VM smoke of the same equivalence (CI slow lane)."""
    configuration = large_fleet_factory(20_000)
    configuration.viability_violations()  # drain construction dirtiness
    names = configuration.vm_names[:200]
    for index, name in enumerate(names):
        vm = configuration.vm(name)
        configuration.replace_vm(vm.with_cpu_demand((index % 3)))
    incremental = configuration.viability_violations(only_dirty=True)
    assert incremental == configuration.viability_violations()
