"""Property-based tests of the FFD heuristic and the bin-packing propagator."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cp import ElementSum, Model, Solver, VectorPacking
from repro.decision.ffd import ffd_place
from repro.model.configuration import Configuration
from repro.model.node import make_working_nodes
from repro.model.vm import VirtualMachine


MEMORY_SIZES = (256, 512, 1024, 2048)


@st.composite
def packing_instances(draw):
    node_count = draw(st.integers(min_value=1, max_value=4))
    vm_count = draw(st.integers(min_value=1, max_value=6))
    capacities = [
        (draw(st.integers(min_value=1, max_value=2)), draw(st.sampled_from((2048, 4096))))
        for _ in range(node_count)
    ]
    demands = [
        (draw(st.integers(min_value=0, max_value=1)), draw(st.sampled_from(MEMORY_SIZES)))
        for _ in range(vm_count)
    ]
    return capacities, demands


@settings(max_examples=60, deadline=None)
@given(packing_instances())
def test_ffd_placement_respects_capacities(instance):
    capacities, demands = instance
    nodes = [
        make_working_nodes(1, cpu_capacity=c, memory_capacity=m, prefix=f"n{i}")[0]
        for i, (c, m) in enumerate(capacities)
    ]
    configuration = Configuration(nodes=nodes)
    vms = [
        VirtualMachine(name=f"vm{i}", memory=memory, cpu_demand=cpu)
        for i, (cpu, memory) in enumerate(demands)
    ]
    placement = ffd_place(configuration, vms)
    if placement is None:
        return
    # apply the placement and check viability
    for vm in vms:
        configuration.add_vm(vm)
        configuration.set_running(vm.name, placement[vm.name])
    assert configuration.is_viable()


@settings(max_examples=40, deadline=None)
@given(packing_instances())
def test_cp_packing_solutions_respect_capacities(instance):
    capacities, demands = instance
    model = Model()
    variables = [
        model.int_var(f"x{i}", range(len(capacities))) for i in range(len(demands))
    ]
    model.add_constraint(VectorPacking(variables, demands, capacities))
    result = Solver(model).solve()
    if not result.has_solution:
        return
    loads = [[0, 0] for _ in capacities]
    for index, var in enumerate(variables):
        node = result.best[var.name]
        loads[node][0] += demands[index][0]
        loads[node][1] += demands[index][1]
    for node, (cpu_cap, mem_cap) in enumerate(capacities):
        assert loads[node][0] <= cpu_cap
        assert loads[node][1] <= mem_cap


@settings(max_examples=25, deadline=None)
@given(packing_instances())
def test_branch_and_bound_matches_brute_force_on_small_instances(instance):
    """The CP optimum equals the exhaustive-search optimum on tiny instances."""
    capacities, demands = instance
    if len(demands) > 4 or len(capacities) > 3:
        return
    costs = [
        {node: (index + node) % 3 * 100 for node in range(len(capacities))}
        for index in range(len(demands))
    ]

    # brute force
    import itertools

    best = None
    for assignment in itertools.product(range(len(capacities)), repeat=len(demands)):
        loads = [[0, 0] for _ in capacities]
        for index, node in enumerate(assignment):
            loads[node][0] += demands[index][0]
            loads[node][1] += demands[index][1]
        if any(
            loads[n][0] > capacities[n][0] or loads[n][1] > capacities[n][1]
            for n in range(len(capacities))
        ):
            continue
        value = sum(costs[i][n] for i, n in enumerate(assignment))
        best = value if best is None else min(best, value)

    # CP search
    model = Model()
    variables = [
        model.int_var(f"x{i}", range(len(capacities))) for i in range(len(demands))
    ]
    # per-VM cost is (index + node) % 3 * 100, i.e. up to 200 — the domain
    # must cover the worst total or the CP search wrongly proves infeasible
    total = model.int_var("total", range(0, 200 * len(demands) + 1))
    model.add_constraint(VectorPacking(variables, demands, capacities))
    model.add_constraint(ElementSum(variables, costs, total))
    result = Solver(model).solve(minimize=total)

    if best is None:
        assert not result.has_solution
    else:
        assert result.has_solution
        assert result.best.objective == best
