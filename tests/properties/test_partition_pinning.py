"""Pinning the lazy partitioner to the retained eager reference.

PR 10 rewrote :func:`repro.scale.partition.partition` around a constraint
*membership index* (per-VM buckets instead of every-VM-asks-every-constraint
sweeps), memoized uniform restriction domains, and positional sorts instead
of O(fleet) ordering comprehensions.  The pre-rewrite implementation is
retained verbatim in :mod:`repro.scale.reference`; this suite asserts the
two produce **field-identical** results — method, reason, exactness flag,
and every zone's index / node tuple / VM tuple / scoped constraint tuple —
on Hypothesis-generated constrained fleets and on the seeded fenced fleets
the scale benchmark uses.

The spy test at the bottom guards the other half of the tentpole's scaling
claim: zone extraction (:func:`repro.scale.parallel.build_zone_configuration`)
must read only zone-local ids from the source configuration — O(zone), never
O(fleet).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints import (
    Among,
    Ban,
    Fence,
    Gather,
    MaxOnline,
    Root,
    RunningCapacity,
    Spread,
)
from repro.model import Configuration, Node, VirtualMachine
from repro.scale.parallel import build_zone_configuration
from repro.scale.partition import partition
from repro.scale.reference import partition_reference
from repro.testing import make_large_fleet

CONSTRAINT_KINDS = (
    "fence",
    "ban",
    "among",
    "spread",
    "gather",
    "root",
    "max_online",
    "running_capacity",
)


def _assert_same_partition(lazy, eager):
    assert lazy.method == eager.method
    assert lazy.reason == eager.reason
    assert lazy.exact == eager.exact
    assert len(lazy.zones) == len(eager.zones)
    for mine, theirs in zip(lazy.zones, eager.zones):
        assert mine.index == theirs.index
        assert mine.nodes == theirs.nodes
        assert mine.vms == theirs.vms
        # Scoped constraints must be the *same objects* in the same catalog
        # order (tuple equality falls back to identity — the catalog has no
        # value equality, which is exactly the pinning we want).
        assert mine.constraints == theirs.constraints


@st.composite
def fleet_scenarios(draw):
    node_count = draw(st.integers(min_value=4, max_value=10))
    vm_count = draw(st.integers(min_value=4, max_value=20))
    placement = [
        draw(st.integers(min_value=0, max_value=node_count - 1))
        for _ in range(vm_count)
    ]
    specs = draw(
        st.lists(
            st.tuples(
                st.sampled_from(CONSTRAINT_KINDS),
                st.lists(
                    st.integers(min_value=0, max_value=31),
                    min_size=1,
                    max_size=5,
                ),
                st.lists(
                    st.integers(min_value=0, max_value=31),
                    min_size=2,
                    max_size=5,
                ),
            ),
            max_size=5,
        )
    )
    shards = draw(st.sampled_from([None, 2, 3]))
    return node_count, vm_count, placement, specs, shards


def _build_scenario(scenario):
    node_count, vm_count, placement, specs, shards = scenario
    configuration = Configuration(
        nodes=[
            Node(name=f"n{i}", cpu_capacity=64, memory_capacity=65536)
            for i in range(node_count)
        ]
    )
    for i in range(vm_count):
        configuration.add_vm(
            VirtualMachine(name=f"v{i}", memory=512, cpu_demand=1)
        )
        configuration.set_running(f"v{i}", f"n{placement[i]}")

    constraints = []
    for kind, vm_picks, node_picks in specs:
        vms = sorted({f"v{i % vm_count}" for i in vm_picks})
        nodes = sorted({f"n{i % node_count}" for i in node_picks})
        if kind == "fence":
            constraints.append(Fence(vms, nodes))
        elif kind == "ban":
            constraints.append(Ban(vms, nodes))
        elif kind == "among":
            half = max(1, len(nodes) // 2)
            groups = [nodes[:half], nodes[half:]]
            constraints.append(
                Among(vms, [g for g in groups if g] or [nodes])
            )
        elif kind == "spread":
            constraints.append(Spread(vms))
        elif kind == "gather":
            constraints.append(Gather(vms))
        elif kind == "root":
            constraints.append(Root(vms))
        elif kind == "max_online":
            constraints.append(MaxOnline(nodes, maximum=len(nodes)))
        elif kind == "running_capacity":
            constraints.append(RunningCapacity(nodes, maximum=vm_count))
    return configuration, constraints, shards


@settings(max_examples=200, deadline=None)
@given(fleet_scenarios())
def test_lazy_partition_matches_eager_reference(scenario):
    configuration, constraints, shards = _build_scenario(scenario)
    target_states = configuration.states()
    lazy = partition(
        configuration, target_states, constraints, shards=shards
    )
    eager = partition_reference(
        configuration, target_states, constraints, shards=shards
    )
    _assert_same_partition(lazy, eager)


def _fenced_catalog(configuration, groups=8):
    """The benchmark's layout: fence each ``i % groups`` VM cohort onto its
    contiguous node-group slice (mirrors :func:`repro.testing.make_large_fleet`)."""
    node_names = list(configuration.node_names)
    width = len(node_names) // groups
    catalog = []
    for g in range(groups):
        stop = (g + 1) * width if g < groups - 1 else len(node_names)
        cohort = [
            name
            for i, name in enumerate(configuration.vm_names)
            if i % groups == g
        ]
        catalog.append(Fence(cohort, node_names[g * width : stop]))
    return catalog


def _assert_fenced_fleet_pinned(configuration, groups=8):
    constraints = _fenced_catalog(configuration, groups=groups)
    target_states = configuration.states()
    lazy = partition(configuration, target_states, constraints)
    eager = partition_reference(configuration, target_states, constraints)
    _assert_same_partition(lazy, eager)
    assert lazy.method == "interference"
    assert lazy.exact is True
    assert len(lazy.zones) == groups


def test_seeded_fenced_fleet_pinned(large_fleet_factory):
    _assert_fenced_fleet_pinned(large_fleet_factory(1_000))


@pytest.mark.slow
def test_seeded_fenced_fleet_pinned_at_scale(large_fleet_factory):
    _assert_fenced_fleet_pinned(large_fleet_factory(20_000))


class _SpyConfiguration(Configuration):
    """Records every id looked up through the read API, so tests can prove
    a consumer touched only the ids it was supposed to."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.node_lookups: set[str] = set()
        self.vm_lookups: set[str] = set()

    def node(self, name):
        self.node_lookups.add(name)
        return super().node(name)

    def vm(self, name):
        self.vm_lookups.add(name)
        return super().vm(name)

    def state_of(self, vm_name):
        self.vm_lookups.add(vm_name)
        return super().state_of(vm_name)

    def location_of(self, vm_name):
        self.vm_lookups.add(vm_name)
        return super().location_of(vm_name)

    def image_location_of(self, vm_name):
        self.vm_lookups.add(vm_name)
        return super().image_location_of(vm_name)

    def reset_lookups(self):
        self.node_lookups.clear()
        self.vm_lookups.clear()


def test_zone_extraction_touches_only_zone_local_ids():
    """Regression for the O(zone) claim: ``build_zone_configuration`` must
    not read any node or VM outside the zone it extracts."""
    fleet = make_large_fleet(1_000, cached=False)
    spy = _SpyConfiguration(nodes=list(fleet.nodes))
    for vm in fleet.vms:
        spy.add_vm(vm)
    for vm_name, host in fleet.placement().items():
        spy.set_running(vm_name, host)

    constraints = _fenced_catalog(spy)
    decomposition = partition(spy, spy.states(), constraints)
    assert decomposition.method == "interference"
    for zone in decomposition.zones:
        spy.reset_lookups()
        sub = build_zone_configuration(spy, zone)
        assert spy.node_lookups <= set(zone.nodes), (
            f"zone {zone.index} extraction read foreign nodes: "
            f"{sorted(spy.node_lookups - set(zone.nodes))[:5]}"
        )
        assert spy.vm_lookups <= set(zone.vms), (
            f"zone {zone.index} extraction read foreign VMs: "
            f"{sorted(spy.vm_lookups - set(zone.vms))[:5]}"
        )
        assert sub.node_names == zone.nodes
        assert tuple(sub.vm_names) == zone.vms
