"""Property-based agreement between repair-based and cold solving.

The repair engine's core claim is *safety by fallback*: freezing the clean
region is only ever an acceleration, never a semantic change.  These
properties hold :class:`~repro.repair.RepairOptimizer` against the cold
monolithic solve on randomly generated perturbed rounds:

* **feasibility agreement** — a perturbed round is repairable exactly when
  the cold solve can place it (the widening schedule ends in the full solve,
  making this an iff);
* **fallback identity** — when the engine falls back (cold start), its
  result is exactly the monolithic result on the same instance;
* **plan validity** — every repaired plan reaches a viable target that the
  independent checker accepts, and `check_plan` accepts every intermediate
  state against the active catalog;
* **no retired pins** — with an elastic ``Fence`` that shrank, the repaired
  target never leaves a member on a node outside the shrunken domain
  (satellite: frozen placements invalidated by constraint repair become
  dirty instead of being pinned).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.constraints import Fence
from repro.constraints.checker import check_configuration, check_plan
from repro.core.optimizer import ContextSwitchOptimizer
from repro.model.configuration import Configuration
from repro.model.errors import PlanningError
from repro.model.node import Node
from repro.model.vm import VirtualMachine, VMState
from repro.repair import RepairOptimizer, compute_dirty_set

MEMORY_CHOICES = (256, 512, 1024)


@st.composite
def perturbed_instances(draw):
    """A placed fleet plus a perturbation: some VMs knocked to Waiting.

    Node and VM sizes are drawn so tight (and occasionally infeasible)
    rounds appear — the agreement properties must hold on both outcomes.
    """
    node_count = draw(st.integers(min_value=3, max_value=6))
    configuration = Configuration()
    nodes = [
        Node(
            name=f"n{i}",
            cpu_capacity=draw(st.integers(min_value=1, max_value=2)),
            memory_capacity=draw(st.sampled_from((2048, 4096))),
        )
        for i in range(node_count)
    ]
    for node in nodes:
        configuration.add_node(node)
    vm_count = draw(st.integers(min_value=3, max_value=8))
    names = []
    for i in range(vm_count):
        vm = VirtualMachine(
            name=f"v{i}",
            memory=draw(st.sampled_from(MEMORY_CHOICES)),
            cpu_demand=draw(st.integers(min_value=0, max_value=1)),
        )
        configuration.add_vm(vm)
        configuration.set_running(vm.name, nodes[i % node_count].name)
        names.append(vm.name)
    victim_count = draw(st.integers(min_value=1, max_value=max(1, vm_count // 3)))
    victims = draw(
        st.lists(
            st.sampled_from(names),
            min_size=victim_count,
            max_size=victim_count,
            unique=True,
        )
    )
    halo = draw(st.integers(min_value=0, max_value=2))
    return configuration, names, victims, halo


def _states(names):
    return {name: VMState.RUNNING for name in names}


def _optimize(optimizer, configuration, names, constraints=()):
    try:
        return optimizer.optimize(
            configuration, _states(names), constraints=constraints
        )
    except PlanningError:
        return None


def _assignment(result):
    return {
        vm: result.target.location_of(vm)
        for vm in result.target.vm_names
        if result.target.state_of(vm) is VMState.RUNNING
    }


@settings(max_examples=25, deadline=None)
@given(perturbed_instances())
def test_repair_and_cold_solve_agree_on_feasibility(instance):
    configuration, names, victims, halo = instance
    engine = RepairOptimizer(
        ContextSwitchOptimizer(timeout=10.0), timeout=10.0, halo=halo
    )
    warm = _optimize(engine, configuration, names)
    if warm is None:
        return  # the unperturbed instance itself is infeasible
    current = warm.target
    for victim in victims:
        current.set_waiting(victim)
    engine.mark_dirty(victims)
    repaired = _optimize(engine, current, names)
    cold = _optimize(
        ContextSwitchOptimizer(timeout=10.0), current, names
    )
    assert (repaired is None) == (cold is None)
    if repaired is None:
        return
    # repaired plans are exactly as trustworthy as cold ones
    repaired.plan.check_reaches(repaired.target)
    assert repaired.target.is_viable()
    for victim in victims:
        assert repaired.target.state_of(victim) is VMState.RUNNING


@settings(max_examples=15, deadline=None)
@given(perturbed_instances())
def test_cold_start_fallback_is_identical_to_the_monolithic_result(instance):
    configuration, names, _victims, _halo = instance
    engine = RepairOptimizer(
        ContextSwitchOptimizer(timeout=10.0), timeout=10.0
    )
    via_repair = _optimize(engine, configuration, names)
    monolithic = _optimize(
        ContextSwitchOptimizer(timeout=10.0), configuration, names
    )
    assert (via_repair is None) == (monolithic is None)
    if via_repair is None:
        return
    assert via_repair.mode == "full"
    assert _assignment(via_repair) == _assignment(monolithic)
    assert via_repair.movement_cost == monolithic.movement_cost


@settings(max_examples=15, deadline=None)
@given(perturbed_instances())
def test_repaired_plans_pass_the_checker_on_every_intermediate_state(instance):
    configuration, names, victims, halo = instance
    fence_nodes = sorted(configuration.node_names)[:-1]
    fence = Fence(list(names[:2]), fence_nodes)
    engine = RepairOptimizer(
        ContextSwitchOptimizer(timeout=10.0), timeout=10.0, halo=halo
    )
    warm = _optimize(engine, configuration, names, constraints=[fence])
    if warm is None:
        return
    current = warm.target
    for victim in victims:
        current.set_waiting(victim)
    engine.mark_dirty(victims)
    repaired = _optimize(engine, current, names, constraints=[fence])
    if repaired is None:
        return
    repaired.plan.check_reaches(repaired.target)
    assert check_configuration(repaired.target, [fence]) == []
    # every intermediate state of the plan agrees with the checker: the
    # recorded violations are exactly what an independent re-check derives
    derived = check_plan(repaired.plan, [fence])
    assert repaired.plan.constraint_violations == derived


@settings(max_examples=25, deadline=None)
@given(perturbed_instances())
def test_shrunken_fence_members_are_never_pinned_to_retired_nodes(instance):
    configuration, names, victims, halo = instance
    node_names = sorted(configuration.node_names)
    wide = Fence(list(names[:3]), node_names)
    engine = RepairOptimizer(
        ContextSwitchOptimizer(timeout=10.0), timeout=10.0, halo=halo
    )
    warm = _optimize(engine, configuration, names, constraints=[wide])
    if warm is None:
        return
    current = warm.target
    # the fence shrinks (e.g. its last node crashed and the elastic repair
    # hook dropped it); members frozen on the retired domain must be dirty
    shrunk = Fence(list(names[:3]), node_names[:-1])
    for victim in victims:
        current.set_waiting(victim)
    engine.mark_dirty(victims)
    dirty = compute_dirty_set(
        current,
        _states(names),
        names,
        constraints=[shrunk],
        marks=victims,
        previous=engine.previous_assignment,
        halo=0,
    )
    for member in names[:3]:
        if (
            current.state_of(member) is VMState.RUNNING
            and current.location_of(member) == node_names[-1]
        ):
            assert member in dirty
    repaired = _optimize(engine, current, names, constraints=[shrunk])
    if repaired is None:
        return
    for member in names[:3]:
        assert repaired.target.location_of(member) in node_names[:-1]
