"""Property-based solver/checker agreement for the constraint subsystem.

The CP compilation (``repro.constraints`` -> ``repro.cp`` propagators) and
the independent checker are two implementations of the same semantics; these
properties hold them against each other on random instances with random
constraint sets:

* every placement the optimizer produces passes the independent checkers
  (target configuration, final plan state, and — for the stateful ``Root`` —
  the whole plan);
* the checkers reject plans that were mutated behind the solver's back;
* ``explain`` agrees with ``is_satisfied_by`` on every constraint.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.constraints import (
    Among,
    Ban,
    Fence,
    Gather,
    Lonely,
    MaxOnline,
    Root,
    RunningCapacity,
    Spread,
    check_configuration,
    check_plan,
)
from repro.core.actions import Migrate
from repro.core.optimizer import ContextSwitchOptimizer
from repro.core.plan import Pool
from repro.model.configuration import Configuration
from repro.model.errors import PlanningError
from repro.model.node import make_working_nodes
from repro.model.vm import VirtualMachine, VMState


@st.composite
def instances(draw):
    node_count = draw(st.integers(min_value=3, max_value=4))
    vm_count = draw(st.integers(min_value=2, max_value=6))
    nodes = make_working_nodes(node_count, cpu_capacity=2, memory_capacity=4096)
    configuration = Configuration(nodes=nodes)
    names = []
    for index in range(vm_count):
        vm = VirtualMachine(
            name=f"vm{index}",
            memory=draw(st.sampled_from((256, 512))),
            cpu_demand=draw(st.integers(min_value=0, max_value=1)),
        )
        configuration.add_vm(vm)
        names.append(vm.name)
        if draw(st.booleans()):
            host = next(
                (
                    n
                    for n in configuration.node_names
                    if configuration.can_host(n, vm)
                ),
                None,
            )
            if host is not None:
                configuration.set_running(vm.name, host)
    return configuration, names


@st.composite
def constraint_sets(draw, names, node_names):
    vm_group = st.lists(
        st.sampled_from(names), min_size=2, max_size=min(3, len(names)), unique=True
    )
    node_group = st.lists(
        st.sampled_from(node_names), min_size=1, max_size=2, unique=True
    )
    makers = [
        lambda: Spread(draw(vm_group)),
        lambda: Gather(draw(vm_group)[:2]),
        lambda: Ban(draw(vm_group), draw(node_group)),
        lambda: Fence(draw(vm_group), draw(node_group) + [node_names[-1]]),
        lambda: Among(
            draw(vm_group),
            [list(node_names[:2]), list(node_names[2:])],
        ),
        lambda: Root(draw(vm_group)),
        lambda: MaxOnline(
            draw(node_group), draw(st.integers(min_value=1, max_value=2))
        ),
        lambda: RunningCapacity(
            draw(node_group),
            draw(st.integers(min_value=1, max_value=len(names))),
        ),
        lambda: Lonely(draw(vm_group)),
    ]
    count = draw(st.integers(min_value=1, max_value=3))
    picks = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(makers) - 1),
            min_size=count,
            max_size=count,
        )
    )
    return [makers[i]() for i in picks]


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_solver_placements_pass_the_independent_checkers(data):
    configuration, names = data.draw(instances())
    constraints = data.draw(
        constraint_sets(names, list(configuration.node_names))
    )
    target_states = {name: VMState.RUNNING for name in names}
    optimizer = ContextSwitchOptimizer(timeout=2.0)
    try:
        result = optimizer.optimize(
            configuration, target_states, constraints=constraints
        )
    except PlanningError:
        # No constrained assignment exists (and no fallback was supplied):
        # a legitimate outcome, nothing to cross-check.
        return
    # solver/checker agreement on the target...
    assert check_configuration(result.target, constraints) == []
    # ...and on the plan's final state
    final = result.plan.apply()
    assert final.same_assignment(result.target)
    assert check_configuration(final, constraints) == []
    # the stateful pin holds continuously over the whole plan
    roots = [c for c in constraints if isinstance(c, Root)]
    if roots:
        assert check_plan(result.plan, roots) == []


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_checkers_reject_mutated_plans(data):
    configuration, names = data.draw(instances())
    banned_node = data.draw(st.sampled_from(list(configuration.node_names)))
    victim = data.draw(st.sampled_from(names))
    ban = Ban([victim], [banned_node])
    target_states = {name: VMState.RUNNING for name in names}
    optimizer = ContextSwitchOptimizer(timeout=2.0)
    try:
        result = optimizer.optimize(
            configuration, target_states, constraints=[ban]
        )
    except PlanningError:
        return
    assert check_plan(result.plan, [ban]) == []
    # mutate the plan behind the solver's back: smuggle the banned VM onto
    # the banned node in a trailing pool
    final = result.plan.apply()
    source_node = final.location_of(victim)
    if source_node is None or source_node == banned_node:
        return
    result.plan.pools.append(
        Pool(
            [
                Migrate(
                    vm=victim,
                    source_node=source_node,
                    destination_node=banned_node,
                )
            ]
        )
    )
    violations = check_plan(result.plan, [ban])
    assert violations
    assert violations[-1].constraint == ban.label
    assert violations[-1].stage == len(result.plan.pools)


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_explain_agrees_with_is_satisfied(data):
    configuration, names = data.draw(instances())
    constraints = data.draw(
        constraint_sets(names, list(configuration.node_names))
    )
    for constraint in constraints:
        satisfied = constraint.is_satisfied_by(configuration)
        assert (constraint.explain(configuration) is None) == satisfied
