"""Property-based tests of the context-switch optimizer.

Invariants: the optimizer's target is always viable, the plan reaches it, and
its cost never exceeds the FFD baseline cost for the same requested states.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.cost import plan_cost
from repro.core.optimizer import ContextSwitchOptimizer
from repro.core.planner import build_plan
from repro.decision.ffd import ffd_target_configuration
from repro.model.configuration import Configuration
from repro.model.errors import NoPivotAvailableError, PlanningError
from repro.model.node import make_working_nodes
from repro.model.vm import VirtualMachine, VMState


MEMORY_SIZES = (256, 512, 1024)
STATES = (VMState.WAITING, VMState.RUNNING, VMState.SLEEPING)


@st.composite
def scenarios(draw):
    node_count = draw(st.integers(min_value=2, max_value=4))
    vm_count = draw(st.integers(min_value=1, max_value=6))
    nodes = make_working_nodes(node_count, cpu_capacity=2, memory_capacity=4096)
    configuration = Configuration(nodes=nodes)
    target_states = {}
    for index in range(vm_count):
        vm = VirtualMachine(
            name=f"vm{index}",
            memory=draw(st.sampled_from(MEMORY_SIZES)),
            cpu_demand=draw(st.integers(min_value=0, max_value=1)),
        )
        configuration.add_vm(vm)
        state = draw(st.sampled_from(STATES))
        if state is VMState.RUNNING:
            host = next(
                (n for n in configuration.node_names if configuration.can_host(n, vm)),
                None,
            )
            if host is None:
                state = VMState.WAITING
            else:
                configuration.set_running(vm.name, host)
        if state is VMState.SLEEPING:
            configuration.set_sleeping(vm.name, draw(st.sampled_from(configuration.node_names)))
        # Only legal life-cycle transitions (Figure 2) are requested.
        if configuration.state_of(vm.name) is VMState.WAITING:
            wanted = draw(st.sampled_from((VMState.RUNNING, VMState.WAITING)))
        else:
            wanted = draw(st.sampled_from((VMState.RUNNING, VMState.SLEEPING)))
        target_states[vm.name] = wanted
    return configuration, target_states


@settings(max_examples=25, deadline=None)
@given(scenarios())
def test_optimizer_target_is_viable_and_reachable(scenario):
    configuration, target_states = scenario
    fallback = ffd_target_configuration(configuration, target_states)
    optimizer = ContextSwitchOptimizer(timeout=1.0)
    try:
        result = optimizer.optimize(
            configuration, target_states, fallback_target=fallback
        )
    except PlanningError:
        # no viable assignment exists for the requested states
        assert fallback is None
        return
    assert result.target.is_viable()
    assert result.plan.apply().same_assignment(result.target)
    for name, state in target_states.items():
        if state is VMState.RUNNING:
            assert result.target.state_of(name) is VMState.RUNNING


@settings(max_examples=20, deadline=None)
@given(scenarios())
def test_optimizer_cost_never_exceeds_ffd_baseline(scenario):
    configuration, target_states = scenario
    fallback = ffd_target_configuration(configuration, target_states)
    if fallback is None:
        return
    try:
        ffd_plan = build_plan(configuration, fallback)
    except (NoPivotAvailableError, PlanningError):
        return
    ffd_cost = plan_cost(ffd_plan).total
    optimizer = ContextSwitchOptimizer(timeout=1.0)
    result = optimizer.optimize(configuration, target_states, fallback_target=fallback)
    assert result.cost <= ffd_cost
