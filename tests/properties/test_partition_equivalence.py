"""Property-based agreement between partitioned and monolithic solving.

The partitioner's core claim is *independence by construction*: per-zone
solutions compose into a valid global plan.  These properties hold the
partitioned optimizer against the monolithic one on randomly generated
fence-partitioned configurations:

* **feasibility agreement** — the partitioned solve succeeds exactly when
  the monolithic solve does (the transparent fallback makes this an iff);
* **objective agreement** — when both sides prove optimality on an
  exact-partition instance they report the same movement cost (the search
  spaces are identical);
* **plan validity** — every merged plan is feasible pool by pool, reaches a
  viable target whose *final* state is checker-clean, and its recorded
  constraint violations agree with the independent checker (transient
  breaches can legitimately occur mid-plan — e.g. a migration cycle inside
  a full fence escaping through an out-of-fence pivot node — and the
  planner must *record* them, exactly as it does for monolithic plans);
* **sharded composition** — the k-way fallback (a heuristic domain
  restriction) still composes into valid plans, with an objective no better
  than the proven optimum.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.constraints import Ban, Fence
from repro.constraints.checker import check_configuration, check_plan
from repro.core.optimizer import ContextSwitchOptimizer
from repro.model.configuration import Configuration
from repro.model.errors import PlanningError
from repro.model.node import Node
from repro.model.vm import VirtualMachine, VMState
from repro.scale import ParallelOptimizer, partition

MEMORY_CHOICES = (256, 512, 1024)


@st.composite
def fenced_instances(draw):
    """A configuration split into 2-3 fenced sub-fleets.

    Each zone gets 2-3 nodes and 1-4 VMs placed round-robin on the zone's
    nodes; CPU demands are drawn so overloaded (and occasionally infeasible)
    zones appear — the properties must hold on both outcomes.
    """
    zone_count = draw(st.integers(min_value=2, max_value=3))
    configuration = Configuration()
    fences = []
    for zone in range(zone_count):
        node_count = draw(st.integers(min_value=2, max_value=3))
        nodes = [
            Node(
                name=f"z{zone}n{i}",
                cpu_capacity=draw(st.integers(min_value=1, max_value=2)),
                memory_capacity=draw(st.sampled_from((2048, 4096))),
            )
            for i in range(node_count)
        ]
        for node in nodes:
            configuration.add_node(node)
        vm_count = draw(st.integers(min_value=1, max_value=4))
        vm_names = []
        for i in range(vm_count):
            vm = VirtualMachine(
                name=f"z{zone}v{i}",
                memory=draw(st.sampled_from(MEMORY_CHOICES)),
                cpu_demand=draw(st.integers(min_value=0, max_value=1)),
            )
            configuration.add_vm(vm)
            configuration.set_running(vm.name, nodes[i % node_count].name)
            vm_names.append(vm.name)
        fences.append(Fence(vm_names, [node.name for node in nodes]))
    return configuration, fences


def _states(configuration):
    return {name: VMState.RUNNING for name in configuration.vm_names}


def _optimize(optimizer, configuration, constraints):
    """Run an optimize and normalise the outcome: the result, or ``None``
    when the instance is infeasible."""
    try:
        return optimizer.optimize(
            configuration, _states(configuration), constraints=constraints
        )
    except PlanningError:
        return None


@settings(max_examples=25, deadline=None)
@given(fenced_instances())
def test_partitioned_and_monolithic_agree(instance):
    configuration, fences = instance
    monolithic = _optimize(
        ContextSwitchOptimizer(timeout=10.0), configuration, fences
    )
    partitioned = _optimize(
        ParallelOptimizer(timeout=10.0, zone_executor="serial"),
        configuration,
        fences,
    )

    # feasibility agreement (iff, thanks to the transparent fallback)
    assert (monolithic is None) == (partitioned is None)
    if monolithic is None:
        return

    # objective agreement on proven-optimal exact partitions
    if (
        partitioned.partition_method == "interference"
        and partitioned.statistics.proven_optimal
        and monolithic.statistics.proven_optimal
    ):
        assert partitioned.movement_cost == monolithic.movement_cost

    # merged plans are exactly as trustworthy as monolithic ones: they
    # reach a viable, checker-clean target, and any transient mid-plan
    # breach (pivot moves) is recorded, never silently dropped
    partitioned.plan.check_reaches(partitioned.target)
    assert partitioned.target.is_viable()
    assert check_configuration(partitioned.target, fences) == []
    derived = check_plan(partitioned.plan, fences)
    assert partitioned.plan.constraint_violations == derived


@settings(max_examples=25, deadline=None)
@given(fenced_instances())
def test_partition_structure_is_sound(instance):
    configuration, fences = instance
    states = _states(configuration)
    result = partition(configuration, states, fences)
    if not result.is_win:
        return
    placed = set(states)
    seen_nodes: set[str] = set()
    seen_vms: set[str] = set()
    for zone in result.zones:
        # node sets pairwise disjoint, VM sets partition the placed VMs
        assert not (seen_nodes & set(zone.nodes))
        assert not (seen_vms & set(zone.vms))
        seen_nodes.update(zone.nodes)
        seen_vms.update(zone.vms)
        # every fence confined to one zone: its members' nodes are inside
        for constraint in zone.constraints:
            assert set(constraint.vms) <= set(zone.vms)
            assert set(constraint.nodes) <= set(zone.nodes)
    assert seen_vms == placed


@settings(max_examples=15, deadline=None)
@given(fenced_instances())
def test_sharded_fallback_composes(instance):
    configuration, _ = instance
    # drop the fences: the unconstrained fleet exercises the k-way fallback
    monolithic = _optimize(
        ContextSwitchOptimizer(timeout=10.0), configuration, ()
    )
    sharded = _optimize(
        ParallelOptimizer(timeout=10.0, zone_executor="serial", shards=2),
        configuration,
        (),
    )
    assert (monolithic is None) == (sharded is None)
    if sharded is None:
        return
    sharded.plan.check_reaches(sharded.target)
    assert sharded.target.is_viable()
    if monolithic.statistics.proven_optimal:
        # a heuristic restriction can never beat the proven optimum
        assert sharded.movement_cost >= monolithic.movement_cost


@settings(max_examples=15, deadline=None)
@given(fenced_instances())
def test_sharded_fallback_enforces_loose_bans(instance):
    """A `Ban` of a single node is *loose* (its allowed domain spans almost
    the whole fleet) and never welds zones — but the sharded fallback must
    still enforce it: the catalog is scoped into every shard, so the banned
    VM is moved off its host rather than the violation being recorded."""
    configuration, _ = instance
    vm = sorted(configuration.vm_names)[0]
    ban = Ban([vm], [configuration.location_of(vm)])
    monolithic = _optimize(
        ContextSwitchOptimizer(timeout=10.0), configuration, (ban,)
    )
    sharded = _optimize(
        ParallelOptimizer(timeout=10.0, zone_executor="serial", shards=2),
        configuration,
        (ban,),
    )
    assert (monolithic is None) == (sharded is None)
    if sharded is None:
        return
    sharded.plan.check_reaches(sharded.target)
    assert check_configuration(sharded.target, [ban]) == []
    if sharded.partition_method == "sharded":
        # a domain restriction never claims global optimality
        assert not sharded.statistics.proven_optimal
