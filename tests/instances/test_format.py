"""The versioned instance format: round trips, fingerprints, validation."""

from __future__ import annotations

import json

import pytest

from repro.constraints import Among, Ban, Fence, Gather, Lonely, MaxOnline, Root, RunningCapacity, Spread
from repro.instances.format import (
    FORMAT_NAME,
    SCHEMA_VERSION,
    Instance,
    InstanceFormatError,
    canonical_json,
    constraint_from_dict,
    constraint_to_dict,
    fingerprint_of,
    instance_from_dict,
    instance_to_json,
    load_instance,
    save_instance,
)
from repro.model.node import make_working_nodes
from repro.model.vjob import VJob, VJobState
from repro.model.vm import VirtualMachine, VMState
from repro.sim.faults import FaultSchedule
from repro.workloads.traces import VJobWorkload, constant_trace


def make_instance(**overrides) -> Instance:
    vms = [
        VirtualMachine(name=f"job0.vm{i}", memory=512, cpu_demand=1, vjob="job0")
        for i in range(2)
    ]
    vjob = VJob(name="job0", vms=vms)
    workload = VJobWorkload(
        vjob=vjob, traces={vm.name: constant_trace(300.0) for vm in vms}
    )
    defaults = dict(
        name="unit",
        seed=7,
        nodes=tuple(make_working_nodes(3, cpu_capacity=2, memory_capacity=2048)),
        workloads=(workload,),
    )
    defaults.update(overrides)
    return Instance(**defaults)


class TestDocument:
    def test_document_carries_format_version_and_fingerprint(self):
        document = make_instance().document()
        assert document["format"] == FORMAT_NAME
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["fingerprint"].startswith("sha256:")
        assert document["fingerprint"] == fingerprint_of(document)

    def test_fingerprint_ignores_itself(self):
        instance = make_instance()
        document = instance.document()
        assert fingerprint_of(document) == fingerprint_of(instance.to_dict())

    def test_fingerprint_changes_with_content(self):
        a = make_instance()
        b = make_instance(seed=8)
        assert a.fingerprint != b.fingerprint

    def test_save_load_save_is_byte_stable(self, tmp_path):
        instance = make_instance(
            constraints=(Spread(["job0.vm0", "job0.vm1"]),),
            faults=FaultSchedule(seed=3).node_crash("node-1", at=100.0),
        )
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        fp1 = save_instance(instance, first)
        fp2 = save_instance(load_instance(first), second)
        assert fp1 == fp2
        assert first.read_bytes() == second.read_bytes()

    def test_round_trip_preserves_semantics(self, tmp_path):
        instance = make_instance(
            states={"job0.vm0": VMState.RUNNING, "job0.vm1": VMState.RUNNING},
            placement={"job0.vm0": "node-0", "job0.vm1": "node-1"},
        )
        path = tmp_path / "inst.json"
        save_instance(instance, path)
        loaded = load_instance(path)
        assert loaded.configuration() == instance.configuration()
        assert loaded.workloads[0].vjob.state is VJobState.RUNNING
        assert loaded.fingerprint == instance.fingerprint

    def test_indented_json_same_document(self):
        instance = make_instance()
        pretty = json.loads(instance_to_json(instance, indent=2))
        compact = json.loads(instance_to_json(instance))
        assert pretty == compact


class TestValidation:
    def test_malformed_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(InstanceFormatError) as excinfo:
            load_instance(path)
        assert excinfo.value.code == "malformed-json"

    def test_wrong_format_marker(self):
        with pytest.raises(InstanceFormatError) as excinfo:
            instance_from_dict({"format": "something-else"})
        assert excinfo.value.code == "not-an-instance"

    def test_schema_version_mismatch(self):
        document = make_instance().document()
        document["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(InstanceFormatError) as excinfo:
            instance_from_dict(document)
        assert excinfo.value.code == "schema-version-mismatch"

    def test_fingerprint_mismatch_detected(self, tmp_path):
        instance = make_instance()
        document = instance.document()
        document["seed"] = 999  # tamper after fingerprinting
        path = tmp_path / "tampered.json"
        path.write_text(json.dumps(document))
        with pytest.raises(InstanceFormatError) as excinfo:
            load_instance(path)
        assert excinfo.value.code == "fingerprint-mismatch"
        # the escape hatch still loads it
        assert load_instance(path, verify_fingerprint=False).seed == 999

    def test_unknown_vm_in_initial_state(self):
        with pytest.raises(InstanceFormatError):
            make_instance(states={"ghost": VMState.RUNNING})

    def test_unknown_node_in_placement(self):
        with pytest.raises(InstanceFormatError):
            make_instance(
                states={"job0.vm0": VMState.RUNNING},
                placement={"job0.vm0": "node-99"},
            )

    def test_vjob_with_mixed_vm_states_rejected(self):
        document = make_instance().document()
        document["initial"]["states"] = {"job0.vm0": "running"}
        document["initial"]["placement"] = {"job0.vm0": "node-0"}
        del document["fingerprint"]
        with pytest.raises(InstanceFormatError) as excinfo:
            instance_from_dict(document)
        assert "disagree" in str(excinfo.value)


class TestConstraintCodec:
    @pytest.mark.parametrize(
        "constraint",
        [
            Spread(["a", "b"], collocation_nodes=["node-0"]),
            Gather(["a", "b"]),
            Ban(["a"], ["node-0", "node-1"]),
            Fence(["a", "b"], ["node-0"], elastic=True),
            Among(["a", "b"], [["node-0", "node-1"], ["node-2"]]),
            Root(["a"]),
            Lonely(["a", "b"]),
            MaxOnline(["node-0", "node-1"], maximum=1),
            RunningCapacity(["node-0"], maximum=3),
        ],
        ids=lambda c: type(c).__name__,
    )
    def test_round_trip(self, constraint):
        encoded = constraint_to_dict(constraint)
        decoded = constraint_from_dict(encoded)
        assert type(decoded) is type(constraint)
        assert constraint_to_dict(decoded) == encoded

    def test_unknown_kind_rejected(self):
        with pytest.raises(InstanceFormatError) as excinfo:
            constraint_from_dict({"kind": "teleport", "vms": ["a"]})
        assert excinfo.value.code == "unknown-constraint"

    def test_invalid_arguments_surface_as_invalid_field(self):
        with pytest.raises(InstanceFormatError) as excinfo:
            constraint_from_dict({"kind": "ban", "vms": ["a"], "nodes": []})
        assert excinfo.value.code == "invalid-field"

    def test_sets_are_serialized_sorted(self):
        encoded = constraint_to_dict(Spread(["zeta", "alpha", "mid"]))
        assert encoded["vms"] == ["alpha", "mid", "zeta"]


class TestCanonicalJson:
    def test_key_order_is_canonical(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_configuration_is_deterministic(self):
        instance = make_instance(
            states={"job0.vm0": VMState.RUNNING, "job0.vm1": VMState.RUNNING},
            placement={"job0.vm1": "node-1", "job0.vm0": "node-0"},
        )
        first = instance.configuration()
        second = instance.configuration()
        assert first == second
        assert list(first.placement()) == list(second.placement())
