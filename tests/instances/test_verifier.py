"""The standalone verifier: scoring, mutations, optimizer independence."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.constraints import Fence, Spread
from repro.instances.format import Instance
from repro.instances.verifier import (
    SubmissionError,
    verify_submission,
)
from repro.model.node import make_working_nodes
from repro.model.vjob import VJob
from repro.model.vm import VirtualMachine, VMState
from repro.workloads.traces import VJobWorkload, constant_trace


def running_instance(constraints=()) -> Instance:
    """Three running VMs (one per vjob) on nodes 0-2, one spare node."""
    workloads = []
    states = {}
    placement = {}
    for i in range(3):
        vm = VirtualMachine(
            name=f"job{i}.vm0", memory=512, cpu_demand=1, vjob=f"job{i}"
        )
        vjob = VJob(name=f"job{i}", vms=[vm])
        workloads.append(
            VJobWorkload(vjob=vjob, traces={vm.name: constant_trace(600.0)})
        )
        states[vm.name] = VMState.RUNNING
        placement[vm.name] = f"node-{i}"
    return Instance(
        name="verify-unit",
        seed=1,
        nodes=tuple(make_working_nodes(4, cpu_capacity=2, memory_capacity=2048)),
        workloads=tuple(workloads),
        constraints=tuple(constraints),
        states=states,
        placement=placement,
    )


def migrate(vm: str, source: str, destination: str) -> dict:
    return {
        "kind": "migrate",
        "vm": vm,
        "source": source,
        "destination": destination,
    }


class TestPlanVerification:
    def test_valid_migration_plan_passes(self):
        instance = running_instance()
        report = verify_submission(
            instance,
            {"plan": {"pools": [[migrate("job0.vm0", "node-0", "node-3")]]}},
        )
        assert report.passed
        assert report.kind == "plan"
        assert report.feasible and report.viable
        assert report.migrations == 1
        assert report.switch_cost == 512  # Table 1: Dm(vm) = memory
        assert report.makespan == report.switch_cost
        assert report.fingerprint == instance.fingerprint

    def test_empty_plan_passes_with_zero_cost(self):
        report = verify_submission(running_instance(), {"plan": {"pools": []}})
        assert report.passed
        assert report.actions == 0
        assert report.switch_cost == 0

    def test_moved_vm_violating_fence_fails(self):
        instance = running_instance(
            constraints=[Fence(["job0.vm0"], ["node-0", "node-1"])]
        )
        report = verify_submission(
            instance,
            {"plan": {"pools": [[migrate("job0.vm0", "node-0", "node-3")]]}},
        )
        assert not report.passed
        assert report.feasible  # the plan executes; the relation is broken
        assert any(
            "Fence" in v.constraint for v in report.constraint_violations
        )

    def test_spread_violation_detected(self):
        instance = running_instance(
            constraints=[Spread(["job0.vm0", "job1.vm0"])]
        )
        report = verify_submission(
            instance,
            {"plan": {"pools": [[migrate("job0.vm0", "node-0", "node-1")]]}},
        )
        assert not report.passed
        assert any(
            "Spread" in v.constraint for v in report.constraint_violations
        )

    def test_infeasible_plan_reported_not_raised(self):
        # migrating from the wrong source node is a planning failure,
        # scored as infeasible rather than raised
        report = verify_submission(
            running_instance(),
            {"plan": {"pools": [[migrate("job0.vm0", "node-1", "node-3")]]}},
        )
        assert not report.passed
        assert not report.feasible
        assert report.infeasibility

    def test_dropped_action_breaks_dependent_pool(self):
        # job0.vm0 never leaves node-0, so the second pool's migration
        # onto node-0 collides: the stage walk flags the overload… or the
        # apply fails. Either way the submission must not pass.
        instance = running_instance()
        both_onto_node0 = {
            "plan": {
                "pools": [
                    [migrate("job1.vm0", "node-1", "node-0")],
                    [migrate("job2.vm0", "node-2", "node-0")],
                ]
            }
        }
        report = verify_submission(instance, both_onto_node0)
        assert not report.passed
        assert not report.viable or not report.feasible

    def test_verifier_verdict_matches_in_process_checker(self):
        from repro.constraints.checker import check_plan
        from repro.core.actions import Migrate
        from repro.core.plan import Pool, ReconfigurationPlan

        constraints = (Fence(["job0.vm0"], ["node-0"]),)
        instance = running_instance(constraints=constraints)
        submission = {
            "plan": {"pools": [[migrate("job0.vm0", "node-0", "node-3")]]}
        }
        report = verify_submission(instance, submission)

        plan = ReconfigurationPlan(source=instance.configuration())
        pool = Pool()
        pool.add(
            Migrate(
                vm="job0.vm0", source_node="node-0", destination_node="node-3"
            )
        )
        plan.append_pool(pool)
        direct = tuple(check_plan(plan, constraints, include_source=False))
        assert [
            (v.constraint, v.message) for v in report.constraint_violations
        ] == [(v.constraint, v.message) for v in direct]
        assert report.passed == (not direct)


class TestAssignmentVerification:
    def test_identity_assignment_costs_nothing(self):
        instance = running_instance()
        report = verify_submission(
            instance,
            {
                "assignment": {
                    "placement": {"job0.vm0": "node-0", "job1.vm0": "node-1"}
                }
            },
        )
        assert report.passed
        assert report.kind == "assignment"
        assert report.switch_cost == 0
        assert report.migrations == 0

    def test_moves_charge_table1_lower_bound(self):
        report = verify_submission(
            running_instance(),
            {"assignment": {"placement": {"job0.vm0": "node-3"}}},
        )
        assert report.passed
        assert report.migrations == 1
        assert report.switch_cost == 512
        assert report.minimum_cost == 512

    def test_waking_a_waiting_vm_is_free(self):
        vm = VirtualMachine(name="w.vm0", memory=256, cpu_demand=1, vjob="w")
        vjob = VJob(name="w", vms=[vm])
        instance = Instance(
            name="waiting",
            seed=1,
            nodes=tuple(make_working_nodes(2, cpu_capacity=2, memory_capacity=1024)),
            workloads=(
                VJobWorkload(vjob=vjob, traces={vm.name: constant_trace(60.0)}),
            ),
        )
        report = verify_submission(
            instance, {"assignment": {"placement": {"w.vm0": "node-1"}}}
        )
        assert report.passed
        assert report.switch_cost == 0
        assert report.actions == 1

    def test_assignment_constraint_violation(self):
        instance = running_instance(
            constraints=[Fence(["job0.vm0"], ["node-0"])]
        )
        report = verify_submission(
            instance,
            {"assignment": {"placement": {"job0.vm0": "node-3"}}},
        )
        assert not report.passed
        assert report.constraint_violations


class TestSubmissionErrors:
    def test_not_a_mapping(self):
        with pytest.raises(SubmissionError) as excinfo:
            verify_submission(running_instance(), ["not", "a", "dict"])
        assert excinfo.value.code == "malformed-submission"

    def test_neither_plan_nor_assignment(self):
        with pytest.raises(SubmissionError) as excinfo:
            verify_submission(running_instance(), {"schedule": []})
        assert excinfo.value.code == "malformed-submission"

    def test_truncated_plan_missing_pools(self):
        with pytest.raises(SubmissionError) as excinfo:
            verify_submission(running_instance(), {"plan": {}})
        assert excinfo.value.code == "truncated-plan"

    def test_truncated_action_missing_destination(self):
        with pytest.raises(SubmissionError) as excinfo:
            verify_submission(
                running_instance(),
                {"plan": {"pools": [[{"kind": "migrate", "vm": "job0.vm0"}]]}},
            )
        assert excinfo.value.code == "truncated-plan"

    def test_unknown_action_kind(self):
        with pytest.raises(SubmissionError) as excinfo:
            verify_submission(
                running_instance(),
                {"plan": {"pools": [[{"kind": "teleport", "vm": "job0.vm0"}]]}},
            )
        assert excinfo.value.code == "unknown-action"

    def test_unknown_vm(self):
        with pytest.raises(SubmissionError) as excinfo:
            verify_submission(
                running_instance(),
                {"plan": {"pools": [[migrate("ghost", "node-0", "node-1")]]}},
            )
        assert excinfo.value.code == "unknown-vm"

    def test_unknown_node(self):
        with pytest.raises(SubmissionError) as excinfo:
            verify_submission(
                running_instance(),
                {
                    "plan": {
                        "pools": [[migrate("job0.vm0", "node-0", "node-99")]]
                    }
                },
            )
        assert excinfo.value.code == "unknown-node"

    def test_instance_mismatch(self):
        with pytest.raises(SubmissionError) as excinfo:
            verify_submission(
                running_instance(),
                {"instance": "some-other-instance", "plan": {"pools": []}},
            )
        assert excinfo.value.code == "instance-mismatch"

    def test_matching_instance_name_accepted(self):
        report = verify_submission(
            running_instance(),
            {"instance": "verify-unit", "plan": {"pools": []}},
        )
        assert report.passed

    def test_error_to_dict_is_structured(self):
        error = SubmissionError("unknown-vm", "no such VM")
        assert error.to_dict() == {
            "error": {"code": "unknown-vm", "message": "no such VM"}
        }


NO_OPTIMIZER_PROBE = """
import json, sys

from repro.instances.format import instance_from_dict
from repro.instances.verifier import verify_submission

document = json.loads(sys.stdin.read())
instance = instance_from_dict(document)
report = verify_submission(
    instance,
    {"plan": {"pools": [[{
        "kind": "migrate", "vm": "job0.vm0",
        "source": "node-0", "destination": "node-3",
    }]]}},
)
assert report.passed, report.to_dict()
forbidden = [
    name for name in sys.modules
    if name == "repro.cp" or name.startswith("repro.cp.")
    or name == "repro.core.optimizer"
    or name == "repro.core.planner"
]
print(json.dumps(forbidden))
"""


def test_verifier_never_imports_the_optimizer():
    """ISSUE acceptance: the repro-verify call path must stay on the
    independent checker pipeline — no CP solver, no optimizer, no planner
    in sys.modules after a full load + verification."""
    import json
    import os
    from pathlib import Path

    import repro

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [src_dir, env.get("PYTHONPATH")])
    )
    document = running_instance().document()
    result = subprocess.run(
        [sys.executable, "-c", NO_OPTIMIZER_PROBE],
        input=json.dumps(document),
        capture_output=True,
        text=True,
        check=True,
        env=env,
    )
    assert json.loads(result.stdout) == []
