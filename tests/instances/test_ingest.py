"""Cluster-trace CSV ingestion into versioned instances."""

from __future__ import annotations

import pytest

from repro.instances.format import (
    InstanceFormatError,
    instance_from_dict,
    load_instance,
    save_instance,
)
from repro.instances.ingest import (
    instance_from_trace_csv,
    populated_instance_from_trace_csv,
    read_trace_rows,
    workloads_from_trace_rows,
)
from repro.model.vm import VMState

TRACE_CSV = """\
vjob,vm,memory_mb,phases,priority,submitted_at
render,render.vm0,1024,120:1;60:0;240:1,0,0.0
render,render.vm1,512,300:1,0,0.0
db,db.vm0,2048,600:1,1,30.0
"""


class TestReadRows:
    def test_reads_from_lines(self):
        rows = read_trace_rows(TRACE_CSV.splitlines())
        assert len(rows) == 3
        assert rows[0]["vm"] == "render.vm0"

    def test_reads_from_path(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(TRACE_CSV)
        assert read_trace_rows(path) == read_trace_rows(TRACE_CSV.splitlines())

    def test_missing_required_column(self):
        with pytest.raises(InstanceFormatError) as excinfo:
            read_trace_rows(["vjob,vm,phases", "a,a.vm0,60:1"])
        assert "memory_mb" in str(excinfo.value)

    def test_empty_input(self):
        with pytest.raises(InstanceFormatError):
            read_trace_rows([])


class TestWorkloadAssembly:
    def test_groups_rows_by_vjob(self):
        workloads = workloads_from_trace_rows(
            read_trace_rows(TRACE_CSV.splitlines())
        )
        assert [w.vjob.name for w in workloads] == ["render", "db"]
        render = workloads[0]
        assert [vm.name for vm in render.vjob.vms] == [
            "render.vm0",
            "render.vm1",
        ]
        assert render.traces["render.vm0"].phases[1].cpu_demand == 0
        assert workloads[1].vjob.priority == 1
        assert workloads[1].vjob.submitted_at == 30.0

    def test_initial_cpu_demand_is_first_phase(self):
        workloads = workloads_from_trace_rows(
            read_trace_rows(
                ["vjob,vm,memory_mb,phases", "j,j.vm0,512,90:0;60:1"]
            )
        )
        assert workloads[0].vjob.vms[0].cpu_demand == 0

    def test_malformed_phases(self):
        with pytest.raises(InstanceFormatError) as excinfo:
            workloads_from_trace_rows(
                read_trace_rows(
                    ["vjob,vm,memory_mb,phases", "j,j.vm0,512,90-1"]
                )
            )
        assert excinfo.value.code == "invalid-field"

    def test_non_integer_memory(self):
        with pytest.raises(InstanceFormatError):
            workloads_from_trace_rows(
                read_trace_rows(
                    ["vjob,vm,memory_mb,phases", "j,j.vm0,lots,90:1"]
                )
            )


class TestInstanceFromTrace:
    def test_round_trips_through_the_format(self, tmp_path):
        instance = instance_from_trace_csv(
            TRACE_CSV.splitlines(), name="traced", seed=5, node_count=4
        )
        assert instance.vm_count == 3
        assert len(instance.nodes) == 4
        assert all(
            instance.state_of(vm) is VMState.WAITING
            for w in instance.workloads
            for vm in w.traces
        )
        path = tmp_path / "traced.json"
        save_instance(instance, path)
        loaded = load_instance(path)
        assert loaded.fingerprint == instance.fingerprint
        assert loaded.configuration() == instance.configuration()

    def test_populated_variant_is_seed_deterministic(self):
        a = populated_instance_from_trace_csv(
            TRACE_CSV.splitlines(), name="populated", seed=9
        )
        b = populated_instance_from_trace_csv(
            TRACE_CSV.splitlines(), name="populated", seed=9
        )
        assert a.fingerprint == b.fingerprint

    def test_populated_round_trip_preserves_drawn_states(self, tmp_path):
        instance = populated_instance_from_trace_csv(
            TRACE_CSV.splitlines(), name="populated", seed=9
        )
        document = instance.document()
        loaded = instance_from_dict(document)
        assert loaded.configuration() == instance.configuration()
        assert loaded.document() == document
