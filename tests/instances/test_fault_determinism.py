"""Cross-process determinism of seeded fault schedules (ISSUE satellite).

An instance embeds a seed; rebuilding its fault schedule in two *fresh*
interpreters must yield the identical timeline.  Hash randomization made the
old set-iterating ``random_fault_schedule`` draw events in a different order
per process — the regression this file guards against.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import repro
from repro.sim.faults import random_fault_schedule

SCHEDULE_PROBE = """
import json

from repro.sim.faults import random_fault_schedule

schedule = random_fault_schedule(
    {f"node-{i}" for i in range(12)},   # a *set*: iteration order is hashed
    horizon=7200.0,
    seed=47,
    crash_rate_per_hour=0.2,
    slowdown_rate_per_hour=0.4,
)
print(json.dumps([
    [event.kind.value, event.time, event.target, event.factor, event.duration]
    for event in schedule.events
]))
"""


def timeline(schedule) -> list[tuple]:
    return [
        (e.kind.value, e.time, e.target, e.factor, e.duration)
        for e in schedule.events
    ]


def run_fresh_process(code: str) -> str:
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [src_dir, env.get("PYTHONPATH")])
    )
    env.pop("PYTHONHASHSEED", None)  # each process gets its own hash seed
    return subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
        env=env,
    ).stdout


def test_same_seed_same_timeline_across_fresh_processes():
    first = json.loads(run_fresh_process(SCHEDULE_PROBE))
    second = json.loads(run_fresh_process(SCHEDULE_PROBE))
    assert first == second
    assert first, "the probe parameters must actually draw events"


def test_set_and_sorted_list_inputs_agree_in_process():
    names = {f"node-{i}" for i in range(12)}
    from_set = random_fault_schedule(
        names, horizon=7200.0, seed=47, slowdown_rate_per_hour=0.4
    )
    from_list = random_fault_schedule(
        sorted(names), horizon=7200.0, seed=47, slowdown_rate_per_hour=0.4
    )
    assert timeline(from_set) == timeline(from_list)


def test_rebuilding_from_the_same_seed_is_identical():
    kwargs = dict(
        horizon=7200.0,
        seed=3,
        crash_rate_per_hour=0.3,
        slowdown_rate_per_hour=0.5,
    )
    first = random_fault_schedule([f"n{i}" for i in range(8)], **kwargs)
    second = random_fault_schedule([f"n{i}" for i in range(8)], **kwargs)
    assert timeline(first) == timeline(second)
    assert first.events, "the probe parameters must actually draw events"
