"""``repro-verify`` CLI: exit codes and structured error reports."""

from __future__ import annotations

import json

import pytest

from repro.instances.cli import EXIT_ERROR, EXIT_FAILED, EXIT_PASSED, main
from repro.instances.format import SCHEMA_VERSION, save_instance

from .test_verifier import migrate, running_instance


@pytest.fixture()
def instance_path(tmp_path):
    path = tmp_path / "instance.json"
    save_instance(running_instance(), path)
    return path


def submission_file(tmp_path, payload, name="submission.json"):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


def run_cli(capsys, *argv):
    code = main([str(a) for a in argv])
    return code, capsys.readouterr().out


class TestHappyPaths:
    def test_passing_plan_exits_zero_with_report(
        self, tmp_path, instance_path, capsys
    ):
        sub = submission_file(
            tmp_path,
            {"plan": {"pools": [[migrate("job0.vm0", "node-0", "node-3")]]}},
        )
        code, out = run_cli(capsys, instance_path, sub)
        assert code == EXIT_PASSED
        report = json.loads(out)
        assert report["passed"] is True
        assert report["switch_cost"] == 512

    def test_failing_plan_exits_one(self, tmp_path, instance_path, capsys):
        sub = submission_file(
            tmp_path,
            {"plan": {"pools": [[migrate("job0.vm0", "node-1", "node-3")]]}},
        )
        code, out = run_cli(capsys, instance_path, sub)
        assert code == EXIT_FAILED
        assert json.loads(out)["passed"] is False

    def test_fingerprint_flag(self, instance_path, capsys):
        code, out = run_cli(capsys, instance_path, "--fingerprint")
        assert code == EXIT_PASSED
        assert out.strip() == running_instance().fingerprint

    def test_report_file_and_verdict_line(
        self, tmp_path, instance_path, capsys
    ):
        sub = submission_file(tmp_path, {"plan": {"pools": []}})
        out_path = tmp_path / "report.json"
        code, out = run_cli(capsys, instance_path, sub, "--report", out_path)
        assert code == EXIT_PASSED
        assert out.startswith("PASSED")
        assert json.loads(out_path.read_text())["passed"] is True


def error_code(out: str) -> str:
    payload = json.loads(out)
    assert set(payload) == {"error"}
    assert set(payload["error"]) == {"code", "message"}
    return payload["error"]["code"]


class TestNegativePaths:
    def test_missing_instance_file(self, tmp_path, capsys):
        code, out = run_cli(capsys, tmp_path / "nope.json", "--fingerprint")
        assert code == EXIT_ERROR
        assert error_code(out) == "missing-file"

    def test_malformed_instance_json(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{]")
        code, out = run_cli(capsys, path, "--fingerprint")
        assert code == EXIT_ERROR
        assert error_code(out) == "malformed-json"

    def test_schema_version_mismatch(self, tmp_path, capsys):
        document = running_instance().document()
        document["schema_version"] = SCHEMA_VERSION + 7
        path = tmp_path / "future.json"
        path.write_text(json.dumps(document))
        code, out = run_cli(capsys, path, "--fingerprint")
        assert code == EXIT_ERROR
        assert error_code(out) == "schema-version-mismatch"

    def test_unknown_constraint_name(self, tmp_path, capsys):
        document = running_instance().document()
        document["constraints"] = [{"kind": "teleport", "vms": ["job0.vm0"]}]
        del document["fingerprint"]
        path = tmp_path / "bad-constraint.json"
        path.write_text(json.dumps(document))
        code, out = run_cli(capsys, path, "--fingerprint")
        assert code == EXIT_ERROR
        assert error_code(out) == "unknown-constraint"

    def test_missing_submission_file(self, tmp_path, instance_path, capsys):
        code, out = run_cli(capsys, instance_path, tmp_path / "ghost.json")
        assert code == EXIT_ERROR
        assert error_code(out) == "missing-file"

    def test_malformed_submission_json(self, tmp_path, instance_path, capsys):
        path = tmp_path / "broken-sub.json"
        path.write_text('{"plan": ')
        code, out = run_cli(capsys, instance_path, path)
        assert code == EXIT_ERROR
        assert error_code(out) == "malformed-json"

    def test_truncated_plan(self, tmp_path, instance_path, capsys):
        sub = submission_file(
            tmp_path, {"plan": {"pools": [[{"kind": "migrate"}]]}}
        )
        code, out = run_cli(capsys, instance_path, sub)
        assert code == EXIT_ERROR
        assert error_code(out) == "truncated-plan"

    def test_unknown_vm_in_submission(self, tmp_path, instance_path, capsys):
        sub = submission_file(
            tmp_path,
            {"plan": {"pools": [[migrate("ghost", "node-0", "node-1")]]}},
        )
        code, out = run_cli(capsys, instance_path, sub)
        assert code == EXIT_ERROR
        assert error_code(out) == "unknown-vm"

    def test_no_submission_argument(self, instance_path, capsys):
        code, out = run_cli(capsys, instance_path)
        assert code == EXIT_ERROR
        assert error_code(out) == "malformed-submission"


def test_entry_point_is_declared():
    """pyproject must expose the console script so an installed package has
    `repro-verify` on PATH."""
    import pathlib
    import re

    pyproject = (
        pathlib.Path(__file__).resolve().parents[2] / "pyproject.toml"
    ).read_text()
    assert re.search(
        r'repro-verify\s*=\s*"repro\.instances\.cli:main"', pyproject
    )
