"""Unit tests of the repair engine: dirty rules, LNS schedule, composition."""

import pytest

from repro.constraints import Ban, Fence, Spread
from repro.core.optimizer import ContextSwitchOptimizer
from repro.model.configuration import Configuration
from repro.model.node import Node
from repro.model.vm import VirtualMachine, VMState
from repro.repair import RepairOptimizer, RepairResult, compute_dirty_set
from repro.scale import ParallelOptimizer


def _fleet(node_count=6, vms_per_node=2, cpu=2, memory=4096, vm_memory=512):
    configuration = Configuration()
    for i in range(node_count):
        configuration.add_node(
            Node(name=f"n{i}", cpu_capacity=cpu, memory_capacity=memory)
        )
    names = []
    for i in range(node_count):
        for j in range(vms_per_node):
            vm = VirtualMachine(
                name=f"vm{i}-{j}", memory=vm_memory, cpu_demand=0
            )
            configuration.add_vm(vm)
            configuration.set_running(vm.name, f"n{i}")
            names.append(vm.name)
    return configuration, names


def _states(names):
    return {name: VMState.RUNNING for name in names}


class TestComputeDirtySet:
    def test_marks_are_filtered_to_the_running_set(self):
        configuration, names = _fleet()
        dirty = compute_dirty_set(
            configuration,
            _states(names),
            names,
            marks=["vm0-0", "ghost"],
            previous={n: configuration.location_of(n) for n in names},
            halo=0,
        )
        assert "vm0-0" in dirty
        assert "ghost" not in dirty

    def test_vms_needing_placement_are_dirty(self):
        configuration, names = _fleet()
        configuration.set_waiting("vm1-0")
        dirty = compute_dirty_set(
            configuration,
            _states(names),
            names,
            previous={n: configuration.location_of(n) for n in names},
            halo=0,
        )
        assert dirty == {"vm1-0"}

    def test_divergence_from_previous_assignment_is_dirty(self):
        configuration, names = _fleet()
        previous = {n: configuration.location_of(n) for n in names}
        previous["vm2-1"] = "n5"  # the plan said n5, execution left it on n2
        dirty = compute_dirty_set(
            configuration, _states(names), names, previous=previous, halo=0
        )
        assert dirty == {"vm2-1"}

    def test_shrunken_fence_invalidates_frozen_placements(self):
        # satellite 3: an elastic Fence that lost a node must dirty the
        # members still placed on the now-retired domain
        configuration, names = _fleet()
        fence = Fence(["vm3-0", "vm3-1"], ["n0"])  # members live on n3
        dirty = compute_dirty_set(
            configuration,
            _states(names),
            names,
            constraints=[fence],
            previous={n: configuration.location_of(n) for n in names},
            halo=0,
        )
        assert {"vm3-0", "vm3-1"} <= dirty

    def test_relational_groups_dirty_together(self):
        configuration, names = _fleet()
        spread = Spread(["vm0-0", "vm4-0"])
        dirty = compute_dirty_set(
            configuration,
            _states(names),
            names,
            constraints=[spread],
            marks=["vm0-0"],
            previous={n: configuration.location_of(n) for n in names},
            halo=0,
        )
        assert {"vm0-0", "vm4-0"} <= dirty

    def test_unary_constraints_do_not_chain_the_group(self):
        configuration, names = _fleet()
        # a Ban over two VMs is per-VM: marking one must not dirty the other
        ban = Ban(["vm0-0", "vm4-0"], ["n5"])
        dirty = compute_dirty_set(
            configuration,
            _states(names),
            names,
            constraints=[ban],
            marks=["vm0-0"],
            previous={n: configuration.location_of(n) for n in names},
            halo=0,
        )
        assert "vm0-0" in dirty
        assert "vm4-0" not in dirty

    def test_halo_expands_to_co_hosted_vms(self):
        configuration, names = _fleet()
        previous = {n: configuration.location_of(n) for n in names}
        no_halo = compute_dirty_set(
            configuration, _states(names), names,
            marks=["vm2-0"], previous=previous, halo=0,
        )
        one_halo = compute_dirty_set(
            configuration, _states(names), names,
            marks=["vm2-0"], previous=previous, halo=1,
        )
        assert no_halo == {"vm2-0"}
        assert one_halo == {"vm2-0", "vm2-1"}  # the co-hosted sibling

    def test_deterministic(self):
        configuration, names = _fleet()
        previous = {n: configuration.location_of(n) for n in names}
        kwargs = dict(marks=["vm1-0", "vm5-1"], previous=previous, halo=2)
        first = compute_dirty_set(
            configuration, _states(names), names, **kwargs
        )
        second = compute_dirty_set(
            configuration, _states(names), names, **kwargs
        )
        assert first == second


class TestRepairOptimizer:
    def _warm_engine(self, timeout=5.0, halo=1):
        configuration, names = _fleet()
        engine = RepairOptimizer(
            ContextSwitchOptimizer(timeout=timeout), timeout=timeout, halo=halo
        )
        cold = engine.optimize(configuration, _states(names))
        assert isinstance(cold, RepairResult)
        assert cold.mode == "full"
        assert "cold start" in cold.reason
        return engine, cold.target, names

    def test_cold_start_falls_back_to_the_full_solve(self):
        self._warm_engine()

    def test_perturbed_round_repairs_and_freezes_the_clean_region(self):
        engine, current, names = self._warm_engine()
        current.set_waiting("vm0-0")
        engine.mark_dirty(["vm0-0"])
        before = {
            vm: current.location_of(vm)
            for vm in names
            if current.state_of(vm) is VMState.RUNNING
        }
        result = engine.optimize(current, _states(names))
        assert result.mode == "repair"
        assert result.attempts == 1
        assert result.dirty_count >= 1
        assert result.frozen_count == len(before) - (result.dirty_count - 1)
        # every frozen VM kept its placement
        moved = [
            vm
            for vm, host in before.items()
            if result.target.location_of(vm) != host
        ]
        assert len(moved) <= result.dirty_count
        assert result.target.state_of("vm0-0") is VMState.RUNNING
        # incremental solves never claim global optimality
        assert not result.statistics.proven_optimal

    def test_widening_releases_frozen_vms_when_the_region_is_too_tight(self):
        configuration = Configuration()
        for i in range(2):
            configuration.add_node(
                Node(name=f"n{i}", cpu_capacity=4, memory_capacity=1024)
            )
        for name, memory, host in (("a", 300, "n0"), ("b", 300, "n1")):
            configuration.add_vm(VirtualMachine(name=name, memory=memory))
            configuration.set_running(name, host)
        configuration.add_vm(VirtualMachine(name="c", memory=800))
        states = {n: VMState.RUNNING for n in ("a", "b", "c")}
        engine = RepairOptimizer(
            ContextSwitchOptimizer(timeout=5.0), timeout=5.0, halo=0
        )
        engine._previous = {"a": "n0", "b": "n1"}
        result = engine.optimize(configuration, states)
        # frozen a+b leave no node with 800 MB free: the engine must widen
        # (or fall back) rather than fail
        assert result.target.state_of("c") is VMState.RUNNING
        assert result.attempts >= 2
        if result.mode == "repair":
            assert "widening" in result.reason

    def test_previous_assignment_tracks_accepted_rounds(self):
        engine, current, names = self._warm_engine()
        assert engine.previous_assignment is not None
        assert set(engine.previous_assignment) == set(names)
        engine.forget()
        assert engine.previous_assignment is None

    def test_marks_are_consumed_by_the_next_solve(self):
        engine, current, names = self._warm_engine()
        engine.mark_dirty(["vm0-0"])
        engine.optimize(current, _states(names))
        assert engine._marks == set()

    def test_deterministic_across_fresh_engines(self):
        def run():
            configuration, names = _fleet()
            engine = RepairOptimizer(
                ContextSwitchOptimizer(timeout=5.0), timeout=5.0
            )
            engine.optimize(configuration, _states(names))
            configuration.set_waiting("vm0-0")
            configuration.set_waiting("vm3-1")
            engine.mark_dirty(["vm0-0", "vm3-1"])
            result = engine.optimize(configuration, _states(names))
            return result.mode, {
                vm: result.target.location_of(vm) for vm in names
            }

        assert run() == run()

    def test_timeout_attribute_is_restored_after_each_solve(self):
        engine, current, names = self._warm_engine(timeout=5.0)
        assert engine.inner.timeout == 5.0
        current.set_waiting("vm0-0")
        engine.mark_dirty(["vm0-0"])
        engine.optimize(current, _states(names))
        assert engine.inner.timeout == 5.0

    def test_close_forwards_to_the_inner_optimizer(self):
        closed = []

        class _Inner:
            timeout = 1.0

            def close(self):
                closed.append(True)

        RepairOptimizer(_Inner()).close()
        assert closed == [True]


class TestPartitionedComposition:
    def test_untouched_zones_are_reused_verbatim(self):
        configuration, names = _fleet(node_count=6, vms_per_node=2)
        zone_a = [n for n in names if int(n[2]) < 3]
        zone_b = [n for n in names if int(n[2]) >= 3]
        fences = [
            Fence(zone_a, ["n0", "n1", "n2"]),
            Fence(zone_b, ["n3", "n4", "n5"]),
        ]
        inner = ParallelOptimizer(timeout=5.0, zone_executor="serial")
        engine = RepairOptimizer(inner, timeout=5.0, halo=0)
        cold = engine.optimize(
            configuration, _states(names), constraints=fences
        )
        assert cold.mode == "full"
        current = cold.target
        current.set_waiting("vm0-0")
        engine.mark_dirty(["vm0-0"])
        result = engine.optimize(
            current, _states(names), constraints=fences
        )
        assert result.mode == "repair"
        # the untouched fence zone was never shipped to a worker
        assert result.reused_zones >= 1
        for vm in zone_b:
            assert result.target.location_of(vm) == current.location_of(vm)
