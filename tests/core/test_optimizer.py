"""Tests of the CP-based context-switch optimizer (Section 4.3)."""

import pytest

from repro.core.optimizer import ContextSwitchOptimizer
from repro.decision.ffd import ffd_target_configuration
from repro.model.configuration import Configuration
from repro.model.errors import PlanningError
from repro.model.node import make_working_nodes
from repro.model.vm import VMState

from repro.testing import make_vm


@pytest.fixture
def cluster():
    nodes = make_working_nodes(4, cpu_capacity=2, memory_capacity=4096)
    configuration = Configuration(nodes=nodes)
    for name, memory, cpu, node in [
        ("a", 1024, 1, "node-0"),
        ("b", 512, 1, "node-1"),
        ("c", 2048, 0, "node-2"),
    ]:
        configuration.add_vm(make_vm(name, memory=memory, cpu=cpu))
        configuration.set_running(name, node)
    configuration.add_vm(make_vm("sleepy", memory=1024, cpu=1))
    configuration.set_sleeping("sleepy", "node-3")
    configuration.add_vm(make_vm("newcomer", memory=512, cpu=1))
    return configuration


class TestKeepInPlace:
    def test_running_vms_stay_put_when_nothing_changes(self, cluster):
        optimizer = ContextSwitchOptimizer(timeout=5)
        result = optimizer.optimize(cluster, {})
        assert result.plan.is_empty
        assert result.cost == 0
        for name in ("a", "b", "c"):
            assert result.target.location_of(name) == cluster.location_of(name)

    def test_sleeping_vm_resumed_locally(self, cluster):
        optimizer = ContextSwitchOptimizer(timeout=5)
        result = optimizer.optimize(cluster, {"sleepy": VMState.RUNNING})
        assert result.target.location_of("sleepy") == "node-3"
        assert result.cost == 1024  # a single local resume

    def test_waiting_vm_runs_without_cost(self, cluster):
        optimizer = ContextSwitchOptimizer(timeout=5)
        result = optimizer.optimize(cluster, {"newcomer": VMState.RUNNING})
        assert result.target.state_of("newcomer") is VMState.RUNNING
        assert result.cost == 0

    def test_suspend_cost_is_fixed(self, cluster):
        optimizer = ContextSwitchOptimizer(timeout=5)
        result = optimizer.optimize(cluster, {"c": VMState.SLEEPING})
        assert result.fixed_cost == 2048
        assert result.cost == 2048
        assert result.target.state_of("c") is VMState.SLEEPING
        assert result.target.image_location_of("c") == "node-2"


class TestOverloadResolution:
    def test_overloaded_node_is_fixed_with_a_migration(self):
        nodes = make_working_nodes(2, cpu_capacity=1, memory_capacity=4096)
        configuration = Configuration(nodes=nodes)
        configuration.add_vm(make_vm("x", memory=512, cpu=1))
        configuration.add_vm(make_vm("y", memory=1024, cpu=1))
        configuration.set_running("x", "node-0")
        configuration.set_running("y", "node-0")  # CPU overload on node-0
        assert not configuration.is_viable()

        optimizer = ContextSwitchOptimizer(timeout=5)
        result = optimizer.optimize(configuration, {})
        assert result.target.is_viable()
        # The cheaper VM moves: x (512 MB) rather than y (1024 MB).
        assert result.target.location_of("x") == "node-1"
        assert result.target.location_of("y") == "node-0"
        assert result.cost == 512

    def test_result_better_or_equal_to_ffd(self, cluster):
        states = {"sleepy": VMState.RUNNING, "newcomer": VMState.RUNNING}
        ffd_target = ffd_target_configuration(cluster, states)
        optimizer = ContextSwitchOptimizer(timeout=5)
        result = optimizer.optimize(cluster, states, fallback_target=ffd_target)
        from repro.core import build_plan, plan_cost

        ffd_cost = plan_cost(build_plan(cluster, ffd_target)).total
        assert result.cost <= ffd_cost


class TestFallbacks:
    def test_infeasible_demand_uses_fallback_error(self):
        nodes = make_working_nodes(1, cpu_capacity=1, memory_capacity=512)
        configuration = Configuration(nodes=nodes)
        configuration.add_vm(make_vm("big", memory=4096, cpu=1))
        optimizer = ContextSwitchOptimizer(timeout=2)
        with pytest.raises(PlanningError):
            optimizer.optimize(configuration, {"big": VMState.RUNNING})

    def test_statistics_are_reported(self, cluster):
        optimizer = ContextSwitchOptimizer(timeout=5)
        result = optimizer.optimize(cluster, {"sleepy": VMState.RUNNING})
        assert result.statistics is not None
        assert result.statistics.elapsed >= 0.0

    def test_first_solution_only_mode(self, cluster):
        optimizer = ContextSwitchOptimizer(timeout=5, first_solution_only=True)
        result = optimizer.optimize(cluster, {"sleepy": VMState.RUNNING})
        assert result.target.state_of("sleepy") is VMState.RUNNING


class TestVJobConsistencyIntegration:
    def test_plan_regroups_vjob_resumes(self):
        nodes = make_working_nodes(3, cpu_capacity=2, memory_capacity=4096)
        configuration = Configuration(nodes=nodes)
        for index in range(2):
            configuration.add_vm(
                make_vm(f"j.vm{index}", memory=512, cpu=1, vjob="j")
            )
            configuration.set_sleeping(f"j.vm{index}", f"node-{index}")
        optimizer = ContextSwitchOptimizer(timeout=5)
        result = optimizer.optimize(
            configuration,
            {"j.vm0": VMState.RUNNING, "j.vm1": VMState.RUNNING},
            vjob_of_vm={"j.vm0": "j", "j.vm1": "j"},
        )
        resume_pools = {
            index
            for index, pool in enumerate(result.plan.pools)
            for action in pool
            if action.kind.value == "resume"
        }
        assert len(resume_pools) == 1
