"""Tests of the reconfiguration planner (Section 4.1).

The scenarios of Figures 7, 8 and 9 are reproduced explicitly, plus the vjob
consistency pass and the failure modes (unreachable targets, missing pivot).
"""

import pytest

from repro.core.actions import ActionKind, Migrate, Resume, Suspend
from repro.core.planner import PlannerOptions, ReconfigurationPlanner, build_plan
from repro.model.configuration import Configuration
from repro.model.errors import NoPivotAvailableError, PlanningError
from repro.model.node import make_working_nodes

from repro.testing import make_vm


def two_node_cluster(memory=2048, cpu=1, count=2):
    return Configuration(nodes=make_working_nodes(count, cpu_capacity=cpu, memory_capacity=memory))


class TestSequentialConstraints:
    def test_figure7_sequence(self):
        """migrate(VM1) can only start once suspend(VM2) has freed node N2."""
        configuration = two_node_cluster(memory=2048, count=2)
        configuration.add_vm(make_vm("vm1", memory=1536, cpu=0))
        configuration.add_vm(make_vm("vm2", memory=1024, cpu=0))
        configuration.set_running("vm1", "node-0")
        configuration.set_running("vm2", "node-1")

        target = configuration.copy()
        target.set_sleeping("vm2")
        target.set_running("vm1", "node-1")

        plan = build_plan(configuration, target)
        assert len(plan.pools) == 2
        assert plan.pools[0].kinds() == {ActionKind.SUSPEND: 1}
        assert plan.pools[1].kinds() == {ActionKind.MIGRATE: 1}
        plan.check_reaches(target)

    def test_independent_actions_share_a_pool(self):
        configuration = two_node_cluster(memory=4096, cpu=2, count=2)
        configuration.add_vm(make_vm("a", memory=512, cpu=1))
        configuration.add_vm(make_vm("b", memory=512, cpu=1))
        configuration.set_running("a", "node-0")
        configuration.set_running("b", "node-1")
        target = configuration.copy()
        target.set_running("a", "node-1")
        target.set_running("b", "node-0")
        # both nodes have room for both VMs: the swap needs a single pool
        plan = build_plan(configuration, target)
        assert len(plan.pools) == 1
        assert plan.action_count() == 2
        plan.check_reaches(target)

    def test_empty_plan_for_identical_configurations(self):
        configuration = two_node_cluster()
        configuration.add_vm(make_vm("a", memory=512))
        configuration.set_running("a", "node-0")
        plan = build_plan(configuration, configuration.copy())
        assert plan.is_empty


class TestInterDependentConstraints:
    def _swap_scenario(self, extra_nodes=1, pivot_memory=2048):
        """Figure 8: two VMs that must swap hosts but each fills its node."""
        nodes = make_working_nodes(2, cpu_capacity=1, memory_capacity=2048)
        nodes += make_working_nodes(
            extra_nodes, cpu_capacity=1, memory_capacity=pivot_memory, prefix="pivot"
        )
        configuration = Configuration(nodes=nodes)
        configuration.add_vm(make_vm("vm1", memory=2048, cpu=0))
        configuration.add_vm(make_vm("vm2", memory=2048, cpu=0))
        configuration.set_running("vm1", "node-0")
        configuration.set_running("vm2", "node-1")
        target = configuration.copy()
        target.set_running("vm1", "node-1")
        target.set_running("vm2", "node-0")
        return configuration, target

    def test_figure8_cycle_broken_with_bypass_migration(self):
        configuration, target = self._swap_scenario()
        plan = build_plan(configuration, target)
        plan.check_reaches(target)
        # Three migrations: one bypass through the pivot plus the two final ones.
        assert plan.count(ActionKind.MIGRATE) == 3
        bypass = plan.pools[0].actions[0]
        assert isinstance(bypass, Migrate)
        assert bypass.destination_node.startswith("pivot")

    def test_cycle_without_pivot_raises(self):
        configuration, target = self._swap_scenario(extra_nodes=0)
        with pytest.raises(NoPivotAvailableError):
            build_plan(configuration, target)

    def test_pivot_too_small_raises(self):
        configuration, target = self._swap_scenario(extra_nodes=1, pivot_memory=512)
        with pytest.raises(NoPivotAvailableError):
            build_plan(configuration, target)

    def test_bypass_prefers_smallest_vm(self):
        """With two VMs of different sizes in the cycle, the cheaper one is
        parked on the pivot."""
        nodes = make_working_nodes(2, cpu_capacity=1, memory_capacity=2048)
        nodes += make_working_nodes(1, cpu_capacity=1, memory_capacity=2048, prefix="pivot")
        configuration = Configuration(nodes=nodes)
        configuration.add_vm(make_vm("small", memory=1536, cpu=1))
        configuration.add_vm(make_vm("large", memory=2048, cpu=1))
        configuration.set_running("small", "node-0")
        configuration.set_running("large", "node-1")
        target = configuration.copy()
        target.set_running("small", "node-1")
        target.set_running("large", "node-0")
        plan = build_plan(configuration, target)
        plan.check_reaches(target)
        bypass = plan.pools[0].actions[0]
        assert bypass.vm == "small"

    def test_three_way_rotation(self):
        """A -> B -> C -> A rotation with full nodes needs one bypass."""
        nodes = make_working_nodes(3, cpu_capacity=1, memory_capacity=1024)
        nodes += make_working_nodes(1, cpu_capacity=1, memory_capacity=1024, prefix="pivot")
        configuration = Configuration(nodes=nodes)
        for index in range(3):
            configuration.add_vm(make_vm(f"vm{index}", memory=1024, cpu=1))
            configuration.set_running(f"vm{index}", f"node-{index}")
        target = configuration.copy()
        for index in range(3):
            target.set_running(f"vm{index}", f"node-{(index + 1) % 3}")
        plan = build_plan(configuration, target)
        plan.check_reaches(target)
        assert plan.count(ActionKind.MIGRATE) == 4


class TestUnreachableTargets:
    def test_unviable_target_raises(self):
        configuration = two_node_cluster(memory=1024, count=2)
        configuration.add_vm(make_vm("a", memory=1024, cpu=1))
        configuration.add_vm(make_vm("b", memory=1024, cpu=1))
        configuration.set_sleeping("a", "node-0")
        configuration.set_sleeping("b", "node-0")
        target = configuration.copy()
        # Both VMs on node-0: not viable, no pending migration to blame.
        target.set_running("a", "node-0")
        target.set_running("b", "node-0")
        with pytest.raises(PlanningError):
            build_plan(configuration, target)


class TestVJobConsistency:
    def _staggered_resume_scenario(self):
        """Two sleeping VMs of the same vjob whose resumes would naturally land
        in different pools: v2's destination must first be freed by a suspend."""
        nodes = make_working_nodes(2, cpu_capacity=1, memory_capacity=2048)
        configuration = Configuration(nodes=nodes)
        configuration.add_vm(make_vm("v1", memory=512, cpu=1, vjob="job"))
        configuration.add_vm(make_vm("v2", memory=512, cpu=1, vjob="job"))
        configuration.add_vm(make_vm("blocker", memory=2048, cpu=1))
        configuration.set_sleeping("v1", "node-0")
        configuration.set_sleeping("v2", "node-1")
        configuration.set_running("blocker", "node-1")
        target = configuration.copy()
        target.set_sleeping("blocker")
        target.set_running("v1", "node-0")
        target.set_running("v2", "node-1")
        return configuration, target

    def test_resumes_of_a_vjob_are_regrouped(self):
        configuration, target = self._staggered_resume_scenario()
        vjob_of_vm = {"v1": "job", "v2": "job"}
        plan = build_plan(configuration, target, vjob_of_vm)
        plan.check_reaches(target)
        resume_pools = {
            index
            for index, pool in enumerate(plan.pools)
            for action in pool
            if isinstance(action, Resume)
        }
        assert len(resume_pools) == 1

    def test_without_vjob_mapping_resumes_stay_split(self):
        configuration, target = self._staggered_resume_scenario()
        plan = build_plan(configuration, target)
        resume_pools = {
            index
            for index, pool in enumerate(plan.pools)
            for action in pool
            if isinstance(action, Resume)
        }
        assert len(resume_pools) == 2

    def test_consistency_can_be_disabled(self):
        configuration, target = self._staggered_resume_scenario()
        planner = ReconfigurationPlanner(PlannerOptions(enforce_vjob_consistency=False))
        plan = planner.build(configuration, target, {"v1": "job", "v2": "job"})
        resume_pools = {
            index
            for index, pool in enumerate(plan.pools)
            for action in pool
            if isinstance(action, Resume)
        }
        assert len(resume_pools) == 2

    def test_suspends_land_in_the_first_pool(self):
        configuration, target = self._staggered_resume_scenario()
        plan = build_plan(configuration, target, {"v1": "job", "v2": "job"})
        suspends = [
            index
            for index, pool in enumerate(plan.pools)
            for action in pool
            if isinstance(action, Suspend)
        ]
        assert suspends == [0]


class TestGuards:
    def test_max_pools_guard(self):
        configuration = two_node_cluster(memory=2048, count=2)
        configuration.add_vm(make_vm("a", memory=512, cpu=0))
        configuration.set_running("a", "node-0")
        target = configuration.copy()
        target.set_running("a", "node-1")
        planner = ReconfigurationPlanner(PlannerOptions(max_pools=0))
        with pytest.raises(PlanningError):
            planner.build(configuration, target)
