"""Tests of the cost model of Section 4.2 and Table 1."""

import pytest

from repro.core.actions import Migrate, Resume, Run, Stop, Suspend
from repro.core.cost import minimum_possible_cost, plan_cost, pool_cost, total_cost
from repro.core.plan import Pool, plan_from_pools
from repro.model.configuration import Configuration
from repro.model.node import make_working_nodes

from repro.testing import make_vm


@pytest.fixture
def configuration():
    nodes = make_working_nodes(4, cpu_capacity=2, memory_capacity=8192)
    configuration = Configuration(nodes=nodes)
    configuration.add_vm(make_vm("m", memory=1024, cpu=1))     # to migrate
    configuration.add_vm(make_vm("s", memory=2048, cpu=1))     # to suspend
    configuration.add_vm(make_vm("z", memory=512, cpu=1))      # sleeping, to resume
    configuration.add_vm(make_vm("w", memory=256, cpu=1))      # waiting, to run
    configuration.set_running("m", "node-0")
    configuration.set_running("s", "node-1")
    configuration.set_sleeping("z", "node-2")
    return configuration


class TestTable1:
    """The local costs of Table 1."""

    def test_migrate_cost_is_memory(self, configuration):
        action = Migrate(vm="m", source_node="node-0", destination_node="node-1")
        assert action.cost(configuration) == 1024

    def test_suspend_cost_is_memory(self, configuration):
        assert Suspend(vm="s", node="node-1").cost(configuration) == 2048

    def test_local_resume_cost_is_memory(self, configuration):
        action = Resume(vm="z", image_node="node-2", destination_node="node-2")
        assert action.cost(configuration) == 512

    def test_remote_resume_cost_is_twice_memory(self, configuration):
        action = Resume(vm="z", image_node="node-2", destination_node="node-0")
        assert action.cost(configuration) == 1024

    def test_run_and_stop_costs_are_constant(self, configuration):
        assert Run(vm="w", node="node-3").cost(configuration) == 0
        assert Stop(vm="m", node="node-0").cost(configuration) == 0


class TestPlanCostModel:
    def test_pool_cost_is_max_of_action_costs(self, configuration):
        pool = Pool(
            [
                Suspend(vm="s", node="node-1"),
                Migrate(vm="m", source_node="node-0", destination_node="node-3"),
            ]
        )
        assert pool_cost(pool, configuration) == 2048

    def test_figure9_style_plan_cost(self, configuration):
        """Two pools: the delay of the first pool is charged to every action of
        the second pool."""
        plan = plan_from_pools(
            configuration,
            [
                [
                    Suspend(vm="s", node="node-1"),
                    Migrate(vm="m", source_node="node-0", destination_node="node-3"),
                ],
                [
                    Resume(vm="z", image_node="node-2", destination_node="node-2"),
                    Run(vm="w", node="node-1"),
                ],
            ],
        )
        breakdown = plan_cost(plan, configuration)
        assert breakdown.pool_costs == (2048, 512)
        # pool 0: suspend 2048 + migrate 1024 ; pool 1: (2048+512) + (2048+0)
        assert breakdown.total == 2048 + 1024 + (2048 + 512) + 2048
        assert total_cost(plan, configuration) == breakdown.total

    def test_local_total_is_a_lower_bound(self, configuration):
        plan = plan_from_pools(
            configuration,
            [
                [Suspend(vm="s", node="node-1")],
                [Migrate(vm="m", source_node="node-0", destination_node="node-3")],
            ],
        )
        breakdown = plan_cost(plan, configuration)
        assert breakdown.local_total == 2048 + 1024
        assert minimum_possible_cost(plan, configuration) == breakdown.local_total
        assert breakdown.local_total <= breakdown.total

    def test_single_pool_plan_has_no_delay_cost(self, configuration):
        plan = plan_from_pools(
            configuration,
            [[Suspend(vm="s", node="node-1"), Suspend(vm="m", node="node-0")]],
        )
        breakdown = plan_cost(plan, configuration)
        assert all(item.delay_cost == 0 for item in breakdown.actions)
        assert breakdown.total == breakdown.local_total

    def test_empty_plan_costs_zero(self, configuration):
        plan = plan_from_pools(configuration, [])
        assert plan_cost(plan, configuration).total == 0

    def test_action_breakdown_records_pool_index(self, configuration):
        plan = plan_from_pools(
            configuration,
            [
                [Suspend(vm="s", node="node-1")],
                [Run(vm="w", node="node-1")],
            ],
        )
        breakdown = plan_cost(plan, configuration)
        assert [item.pool_index for item in breakdown.actions] == [0, 1]
        assert breakdown.actions[1].delay_cost == 2048
        assert int(breakdown) == breakdown.total
