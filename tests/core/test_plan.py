"""Tests of pools and reconfiguration plans."""

import pytest

from repro.core.actions import ActionKind, Migrate, Run, Suspend
from repro.core.plan import Pool, ReconfigurationPlan, merge_pools, plan_from_pools
from repro.model.configuration import Configuration
from repro.model.errors import PlanningError
from repro.model.node import make_working_nodes

from repro.testing import make_vm


@pytest.fixture
def configuration():
    nodes = make_working_nodes(2, cpu_capacity=1, memory_capacity=2048)
    configuration = Configuration(nodes=nodes)
    configuration.add_vm(make_vm("a", memory=1024, cpu=1))
    configuration.add_vm(make_vm("b", memory=1024, cpu=1))
    configuration.set_running("a", "node-0")
    configuration.set_running("b", "node-1")
    return configuration


class TestPool:
    def test_cost_is_most_expensive_action(self, configuration):
        pool = Pool(
            [
                Suspend(vm="a", node="node-0"),
                Migrate(vm="b", source_node="node-1", destination_node="node-0"),
            ]
        )
        assert pool.cost(configuration) == 1024

    def test_empty_pool_cost_is_zero(self, configuration):
        assert Pool().cost(configuration) == 0
        assert not Pool()

    def test_kinds_counter(self, configuration):
        pool = Pool([Suspend(vm="a", node="node-0"), Suspend(vm="b", node="node-1")])
        assert pool.kinds() == {ActionKind.SUSPEND: 2}


class TestPlanSemantics:
    def test_apply_runs_pools_in_order(self, configuration):
        # b can only move to node-0 after a has been suspended (Figure 7).
        plan = plan_from_pools(
            configuration,
            [
                [Suspend(vm="a", node="node-0")],
                [Migrate(vm="b", source_node="node-1", destination_node="node-0")],
            ],
        )
        result = plan.apply()
        assert result.location_of("b") == "node-0"
        assert result.state_of("a").value == "sleeping"

    def test_apply_rejects_infeasible_order(self, configuration):
        plan = plan_from_pools(
            configuration,
            [
                [Migrate(vm="b", source_node="node-1", destination_node="node-0")],
                [Suspend(vm="a", node="node-0")],
            ],
        )
        with pytest.raises(PlanningError):
            plan.apply()
        assert not plan.is_feasible()

    def test_apply_rejects_conflicting_parallel_consumers(self):
        nodes = make_working_nodes(2, cpu_capacity=2, memory_capacity=2048)
        configuration = Configuration(nodes=nodes)
        configuration.add_vm(make_vm("x", memory=1536, cpu=1))
        configuration.add_vm(make_vm("y", memory=1536, cpu=1))
        # both want to start on node-0, which can host only one of them
        plan = plan_from_pools(
            configuration,
            [[Run(vm="x", node="node-0"), Run(vm="y", node="node-0")]],
        )
        with pytest.raises(PlanningError):
            plan.apply()

    def test_check_reaches(self, configuration):
        target = configuration.copy()
        target.set_sleeping("a")
        plan = plan_from_pools(configuration, [[Suspend(vm="a", node="node-0")]])
        plan.check_reaches(target)
        other_target = configuration.copy()
        other_target.set_sleeping("b")
        with pytest.raises(PlanningError):
            plan.check_reaches(other_target)

    def test_apply_does_not_mutate_source(self, configuration):
        plan = plan_from_pools(configuration, [[Suspend(vm="a", node="node-0")]])
        plan.apply()
        assert configuration.state_of("a").value == "running"


class TestPlanQueries:
    def test_counts_and_summary(self, configuration):
        plan = plan_from_pools(
            configuration,
            [
                [Suspend(vm="a", node="node-0")],
                [Migrate(vm="b", source_node="node-1", destination_node="node-0")],
            ],
        )
        assert plan.action_count() == 2
        assert plan.count(ActionKind.SUSPEND) == 1
        assert plan.count(ActionKind.RUN) == 0
        summary = plan.summary()
        assert summary["pools"] == 2
        assert summary["suspend"] == 1
        assert summary["migrate"] == 1

    def test_pool_of(self, configuration):
        suspend = Suspend(vm="a", node="node-0")
        migrate = Migrate(vm="b", source_node="node-1", destination_node="node-0")
        plan = plan_from_pools(configuration, [[suspend], [migrate]])
        assert plan.pool_of(suspend) == 0
        assert plan.pool_of(migrate) == 1
        with pytest.raises(PlanningError):
            plan.pool_of(Run(vm="a", node="node-0"))

    def test_empty_plan(self, configuration):
        plan = ReconfigurationPlan(source=configuration)
        assert plan.is_empty
        assert plan.apply().same_assignment(configuration)

    def test_append_pool_skips_empty_pools(self, configuration):
        plan = ReconfigurationPlan(source=configuration)
        plan.append_pool(Pool())
        assert len(plan) == 0

    def test_merge_pools(self, configuration):
        merged = merge_pools(
            [Pool([Suspend(vm="a", node="node-0")]), Pool([Suspend(vm="b", node="node-1")])]
        )
        assert len(merged) == 2

    def test_str_output_lists_pools(self, configuration):
        plan = plan_from_pools(configuration, [[Suspend(vm="a", node="node-0")]])
        text = str(plan)
        assert "pool 0" in text and "suspend(a" in text
