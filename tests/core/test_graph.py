"""Tests of the reconfiguration graph derivation."""

import pytest

from repro.core.actions import Migrate, Resume, Run, Stop, Suspend
from repro.core.graph import ReconfigurationGraph
from repro.model.configuration import Configuration
from repro.model.errors import PlanningError
from repro.model.node import make_working_nodes

from repro.testing import make_vm


@pytest.fixture
def current():
    nodes = make_working_nodes(3, cpu_capacity=2, memory_capacity=4096)
    configuration = Configuration(nodes=nodes)
    for name, memory, cpu in [
        ("r1", 1024, 1),
        ("r2", 512, 0),
        ("s1", 2048, 1),
        ("w1", 512, 1),
    ]:
        configuration.add_vm(make_vm(name, memory=memory, cpu=cpu))
    configuration.set_running("r1", "node-0")
    configuration.set_running("r2", "node-1")
    configuration.set_sleeping("s1", "node-2")
    return configuration


def test_identical_configurations_produce_empty_graph(current):
    graph = ReconfigurationGraph(current.copy(), current.copy())
    assert graph.is_empty()
    assert len(graph) == 0


def test_each_transition_produces_the_expected_action(current):
    target = current.copy()
    target.set_running("r1", "node-2")        # migrate
    target.set_sleeping("r2")                 # suspend
    target.set_running("s1", "node-2")        # local resume
    target.set_running("w1", "node-1")        # run
    graph = ReconfigurationGraph(current, target)
    actions = {type(a) for a in graph.actions}
    assert actions == {Migrate, Suspend, Resume, Run}
    assert len(graph) == 4


def test_resume_locality_comes_from_the_image_location(current):
    target = current.copy()
    target.set_running("s1", "node-0")
    graph = ReconfigurationGraph(current, target)
    resume = next(a for a in graph.actions if isinstance(a, Resume))
    assert resume.image_node == "node-2"
    assert not resume.is_local


def test_stop_generated_for_terminated_running_vm(current):
    target = current.copy()
    target.set_terminated("r1")
    graph = ReconfigurationGraph(current, target)
    assert len(graph) == 1
    assert isinstance(graph.actions[0], Stop)


def test_terminating_non_running_vms_needs_no_action(current):
    target = current.copy()
    target.set_terminated("s1")
    target.set_terminated("w1")
    graph = ReconfigurationGraph(current, target)
    assert graph.is_empty()


def test_running_vm_staying_in_place_needs_no_action(current):
    target = current.copy()
    target.set_running("w1", "node-1")
    graph = ReconfigurationGraph(current, target)
    assert len(graph) == 1  # only the run action for w1


def test_running_vm_cannot_return_to_waiting(current):
    """The life cycle of Figure 2 has no Running -> Waiting transition."""
    target = current.copy()
    target.set_waiting("r1")
    with pytest.raises(PlanningError):
        ReconfigurationGraph(current, target)


def test_waiting_and_sleeping_vms_staying_put_need_no_action(current):
    target = current.copy()
    graph = ReconfigurationGraph(current, target)
    assert graph.is_empty()


def test_mismatched_vm_sets_raise(current):
    other = Configuration(nodes=make_working_nodes(3))
    other.add_vm(make_vm("different"))
    with pytest.raises(PlanningError):
        ReconfigurationGraph(current, other)


def test_terminated_vm_cannot_run_again(current):
    current.set_terminated("r1")
    target = current.copy()
    # Forge a target that wants the terminated VM running again.
    target.set_running("r1", "node-0")
    with pytest.raises(PlanningError):
        ReconfigurationGraph(current, target)


def test_incoming_and_outgoing_edges(current):
    target = current.copy()
    target.set_running("r1", "node-2")
    graph = ReconfigurationGraph(current, target)
    assert len(graph.outgoing("node-0")) == 1
    assert len(graph.incoming("node-2")) == 1
    assert graph.incoming("node-1") == []


def test_edges_carry_vm_demand(current):
    target = current.copy()
    target.set_running("r1", "node-2")
    graph = ReconfigurationGraph(current, target)
    edge = graph.edges[0]
    assert edge.demand.memory == 1024
    assert edge.demand.cpu == 1
