"""Tests of the VM actions and their Table 1 costs."""

import pytest

from repro.core.actions import (
    ActionKind,
    Migrate,
    Resume,
    Run,
    Stop,
    Suspend,
    required_resources,
)
from repro.model.configuration import Configuration
from repro.model.errors import ExecutionError
from repro.model.node import make_working_nodes
from repro.model.resources import ResourceVector
from repro.model.vm import VMState

from repro.testing import make_vm


@pytest.fixture
def configuration():
    nodes = make_working_nodes(3, cpu_capacity=2, memory_capacity=4096)
    configuration = Configuration(nodes=nodes)
    configuration.add_vm(make_vm("running", memory=1024, cpu=1))
    configuration.add_vm(make_vm("waiting", memory=512, cpu=1))
    configuration.add_vm(make_vm("sleeping", memory=2048, cpu=1))
    configuration.set_running("running", "node-0")
    configuration.set_sleeping("sleeping", "node-1")
    return configuration


class TestRun:
    def test_cost_is_constant_zero(self, configuration):
        assert Run(vm="waiting", node="node-2").cost(configuration) == 0

    def test_feasible_on_free_node(self, configuration):
        assert Run(vm="waiting", node="node-2").is_feasible(configuration)

    def test_infeasible_when_node_full(self, configuration):
        configuration.add_vm(make_vm("fat", memory=4096, cpu=2))
        configuration.set_running("fat", "node-2")
        assert not Run(vm="waiting", node="node-2").is_feasible(configuration)

    def test_infeasible_when_not_waiting(self, configuration):
        assert not Run(vm="running", node="node-2").is_feasible(configuration)

    def test_apply(self, configuration):
        Run(vm="waiting", node="node-2").apply(configuration)
        assert configuration.state_of("waiting") is VMState.RUNNING
        assert configuration.location_of("waiting") == "node-2"

    def test_apply_wrong_state_raises(self, configuration):
        with pytest.raises(ExecutionError):
            Run(vm="running", node="node-2").apply(configuration)

    def test_resource_effects(self, configuration):
        action = Run(vm="waiting", node="node-2")
        assert action.consumes_resources()
        assert not action.liberates_resources()
        assert action.destination() == "node-2"
        assert required_resources(action, configuration) == ResourceVector(1, 512)


class TestStop:
    def test_cost_is_constant_zero(self, configuration):
        assert Stop(vm="running", node="node-0").cost(configuration) == 0

    def test_always_feasible_on_running_vm(self, configuration):
        assert Stop(vm="running", node="node-0").is_feasible(configuration)
        assert not Stop(vm="waiting", node="node-0").is_feasible(configuration)

    def test_apply(self, configuration):
        Stop(vm="running", node="node-0").apply(configuration)
        assert configuration.state_of("running") is VMState.TERMINATED

    def test_liberates_resources(self, configuration):
        action = Stop(vm="running", node="node-0")
        assert action.liberates_resources()
        assert not action.consumes_resources()


class TestMigrate:
    def test_cost_is_memory_demand(self, configuration):
        action = Migrate(vm="running", source_node="node-0", destination_node="node-2")
        assert action.cost(configuration) == 1024

    def test_feasibility_requires_room_on_destination(self, configuration):
        configuration.add_vm(make_vm("blocker", memory=4096, cpu=0))
        configuration.set_running("blocker", "node-2")
        action = Migrate(vm="running", source_node="node-0", destination_node="node-2")
        assert not action.is_feasible(configuration)

    def test_feasibility_requires_correct_source(self, configuration):
        action = Migrate(vm="running", source_node="node-1", destination_node="node-2")
        assert not action.is_feasible(configuration)

    def test_apply_moves_vm(self, configuration):
        Migrate(vm="running", source_node="node-0", destination_node="node-2").apply(
            configuration
        )
        assert configuration.location_of("running") == "node-2"

    def test_apply_from_wrong_node_raises(self, configuration):
        with pytest.raises(ExecutionError):
            Migrate(
                vm="running", source_node="node-1", destination_node="node-2"
            ).apply(configuration)

    def test_kind(self):
        assert Migrate(vm="x", source_node="a", destination_node="b").kind is ActionKind.MIGRATE


class TestSuspend:
    def test_cost_is_memory_demand(self, configuration):
        assert Suspend(vm="running", node="node-0").cost(configuration) == 1024

    def test_feasible_only_on_its_host(self, configuration):
        assert Suspend(vm="running", node="node-0").is_feasible(configuration)
        assert not Suspend(vm="running", node="node-1").is_feasible(configuration)

    def test_apply_keeps_image_on_host(self, configuration):
        Suspend(vm="running", node="node-0").apply(configuration)
        assert configuration.state_of("running") is VMState.SLEEPING
        assert configuration.image_location_of("running") == "node-0"


class TestResume:
    def test_local_resume_costs_memory(self, configuration):
        action = Resume(vm="sleeping", image_node="node-1", destination_node="node-1")
        assert action.is_local
        assert action.cost(configuration) == 2048

    def test_remote_resume_costs_twice_memory(self, configuration):
        action = Resume(vm="sleeping", image_node="node-1", destination_node="node-2")
        assert not action.is_local
        assert action.cost(configuration) == 4096

    def test_feasibility_requires_room(self, configuration):
        configuration.add_vm(make_vm("blocker", memory=3000, cpu=0))
        configuration.set_running("blocker", "node-1")
        action = Resume(vm="sleeping", image_node="node-1", destination_node="node-1")
        assert not action.is_feasible(configuration)

    def test_apply(self, configuration):
        Resume(vm="sleeping", image_node="node-1", destination_node="node-2").apply(
            configuration
        )
        assert configuration.state_of("sleeping") is VMState.RUNNING
        assert configuration.location_of("sleeping") == "node-2"

    def test_apply_on_running_vm_raises(self, configuration):
        with pytest.raises(ExecutionError):
            Resume(vm="running", image_node=None, destination_node="node-2").apply(
                configuration
            )

    def test_str_mentions_locality(self):
        local = Resume(vm="v", image_node="n", destination_node="n")
        remote = Resume(vm="v", image_node="n", destination_node="m")
        assert "local" in str(local)
        assert "remote" in str(remote)
