"""Tests of the high-level ClusterContextSwitch facade."""

import pytest

from repro.core.context_switch import ClusterContextSwitch
from repro.decision.ffd import ffd_target_configuration
from repro.model.configuration import Configuration
from repro.model.node import make_working_nodes
from repro.model.vm import VMState

from repro.testing import make_vm


@pytest.fixture
def configuration():
    nodes = make_working_nodes(3, cpu_capacity=2, memory_capacity=4096)
    configuration = Configuration(nodes=nodes)
    configuration.add_vm(make_vm("r", memory=1024, cpu=1))
    configuration.add_vm(make_vm("s", memory=512, cpu=1))
    configuration.set_running("r", "node-0")
    configuration.set_sleeping("s", "node-1")
    return configuration


class TestCompute:
    def test_with_optimizer(self, configuration):
        switcher = ClusterContextSwitch(optimizer_timeout=5)
        report = switcher.compute(configuration, {"s": VMState.RUNNING})
        assert report.target.state_of("s") is VMState.RUNNING
        assert report.total_cost == 512  # local resume
        assert not report.used_fallback
        assert report.plan.apply().same_assignment(report.target)

    def test_without_optimizer_requires_fallback(self, configuration):
        switcher = ClusterContextSwitch(use_optimizer=False)
        with pytest.raises(ValueError):
            switcher.compute(configuration, {"s": VMState.RUNNING})

    def test_without_optimizer_uses_fallback_target(self, configuration):
        states = {"s": VMState.RUNNING}
        fallback = ffd_target_configuration(configuration, states)
        switcher = ClusterContextSwitch(use_optimizer=False)
        report = switcher.compute(configuration, states, fallback_target=fallback)
        assert report.target is fallback
        assert report.plan.apply().same_assignment(fallback)

    def test_summary_contains_cost_and_counts(self, configuration):
        switcher = ClusterContextSwitch(optimizer_timeout=5)
        report = switcher.compute(configuration, {"r": VMState.SLEEPING})
        summary = report.summary()
        assert summary["cost"] == report.total_cost == 1024
        assert summary["suspend"] == 1


class TestPlanTo:
    def test_plans_towards_explicit_target(self, configuration):
        target = configuration.copy()
        target.set_running("r", "node-2")
        switcher = ClusterContextSwitch()
        report = switcher.plan_to(configuration, target)
        assert report.total_cost == 1024
        report.plan.check_reaches(target)

    def test_noop_plan(self, configuration):
        switcher = ClusterContextSwitch()
        report = switcher.plan_to(configuration, configuration.copy())
        assert report.plan.is_empty
        assert report.total_cost == 0
