"""Tests of the placement constraints (Spread/Gather/Ban/Fence).

These relations are the "additional low level relations between the VMs"
announced in the paper's conclusion (high-availability spreading was already
available in Entropy); the optimizer must honour them when it computes the
target configuration.
"""

import pytest

from repro.core import Ban, ContextSwitchOptimizer, Fence, Gather, Spread, check_constraints
from repro.cp import AllDifferent
from repro.model.configuration import Configuration
from repro.model.errors import PlanningError
from repro.model.node import make_working_nodes
from repro.model.vm import VMState

from repro.testing import make_vm


@pytest.fixture
def configuration():
    configuration = Configuration(
        nodes=make_working_nodes(3, cpu_capacity=2, memory_capacity=4096)
    )
    for name in ("a", "b", "c"):
        configuration.add_vm(make_vm(name, memory=512, cpu=1))
    configuration.set_running("a", "node-0")
    configuration.set_running("b", "node-0")
    configuration.set_running("c", "node-1")
    return configuration


class TestConstraintSemantics:
    def test_spread_satisfaction(self, configuration):
        assert not Spread(["a", "b"]).is_satisfied_by(configuration)
        assert Spread(["a", "c"]).is_satisfied_by(configuration)

    def test_spread_ignores_non_running_vms(self, configuration):
        configuration.set_sleeping("b")
        assert Spread(["a", "b"]).is_satisfied_by(configuration)

    def test_gather_satisfaction(self, configuration):
        assert Gather(["a", "b"]).is_satisfied_by(configuration)
        assert not Gather(["a", "c"]).is_satisfied_by(configuration)

    def test_ban_satisfaction(self, configuration):
        assert Ban(["a"], ["node-2"]).is_satisfied_by(configuration)
        assert not Ban(["a"], ["node-0"]).is_satisfied_by(configuration)

    def test_fence_satisfaction(self, configuration):
        assert Fence(["a", "b"], ["node-0", "node-2"]).is_satisfied_by(configuration)
        assert not Fence(["c"], ["node-0"]).is_satisfied_by(configuration)

    def test_check_constraints_lists_violations(self, configuration):
        violated = check_constraints(
            configuration, [Spread(["a", "b"]), Ban(["c"], ["node-2"])]
        )
        assert len(violated) == 1
        assert isinstance(violated[0], Spread)

    def test_empty_vm_list_rejected(self):
        with pytest.raises(ValueError):
            Spread([])
        with pytest.raises(ValueError):
            Ban(["a"], [])
        with pytest.raises(ValueError):
            Fence(["a"], [])

    def test_unary_restrictions(self, configuration):
        nodes = configuration.node_names
        assert Ban(["a"], ["node-0"]).allowed_nodes("a", nodes) == {"node-1", "node-2"}
        assert Ban(["a"], ["node-0"]).allowed_nodes("other", nodes) is None
        assert Fence(["a"], ["node-1"]).allowed_nodes("a", nodes) == {"node-1"}
        assert Spread(["a", "b"]).allowed_nodes("a", nodes) is None

    def test_spread_and_gather_produce_cp_constraints(self, configuration):
        from repro.cp import NotEqual
        from repro.cp.variables import IntVar

        # a two-VM spread compiles to the cheap pairwise disequality, larger
        # groups to the n-ary all-different
        variables = {name: IntVar(name, [0, 1, 2]) for name in ("a", "b", "c")}
        pair = Spread(["a", "b"]).cp_constraints(variables, {})
        assert len(pair) == 1 and isinstance(pair[0], NotEqual)
        spread = Spread(["a", "b", "c"]).cp_constraints(variables, {})
        assert len(spread) == 1 and isinstance(spread[0], AllDifferent)
        gather = Gather(["a", "b"]).cp_constraints(variables, {})
        assert len(gather) == 1
        # a single involved running VM needs no relational constraint
        assert Spread(["a", "zzz"]).cp_constraints({"a": variables["a"]}, {}) == []


class TestOptimizerIntegration:
    def test_spread_forces_vms_apart(self, configuration):
        optimizer = ContextSwitchOptimizer(timeout=5)
        result = optimizer.optimize(
            configuration, {}, constraints=[Spread(["a", "b"])]
        )
        assert result.target.location_of("a") != result.target.location_of("b")
        assert result.plan.apply().same_assignment(result.target)
        # spreading has a cost: one of the two VMs had to move
        assert result.cost >= 512

    def test_gather_forces_colocation(self, configuration):
        optimizer = ContextSwitchOptimizer(timeout=5)
        result = optimizer.optimize(
            configuration, {}, constraints=[Gather(["a", "c"])]
        )
        assert result.target.location_of("a") == result.target.location_of("c")

    def test_ban_evicts_a_node(self, configuration):
        optimizer = ContextSwitchOptimizer(timeout=5)
        result = optimizer.optimize(
            configuration, {}, constraints=[Ban(["a", "b", "c"], ["node-0"])]
        )
        for name in ("a", "b", "c"):
            assert result.target.location_of(name) != "node-0"

    def test_fence_restricts_where_a_vm_may_resume(self, configuration):
        configuration.add_vm(make_vm("sleepy", memory=512, cpu=1))
        configuration.set_sleeping("sleepy", "node-0")
        optimizer = ContextSwitchOptimizer(timeout=5)
        result = optimizer.optimize(
            configuration,
            {"sleepy": VMState.RUNNING},
            constraints=[Fence(["sleepy"], ["node-2"])],
        )
        assert result.target.location_of("sleepy") == "node-2"
        # the fence made the resume remote, hence more expensive
        assert result.cost == 1024

    def test_unsatisfiable_constraints_raise(self, configuration):
        optimizer = ContextSwitchOptimizer(timeout=2)
        with pytest.raises(PlanningError):
            optimizer.optimize(
                configuration,
                {},
                constraints=[Fence(["a"], ["node-1"]), Ban(["a"], ["node-1"])],
            )

    def test_constraints_through_the_facade(self, configuration):
        from repro.core import ClusterContextSwitch

        switcher = ClusterContextSwitch(optimizer_timeout=5)
        report = switcher.compute(
            configuration, {}, constraints=[Spread(["a", "b"])]
        )
        assert not check_constraints(report.target, [Spread(["a", "b"])])
