"""Unit tests of the span tracer core (``repro.obs.tracer``)."""

from __future__ import annotations

import threading

from repro.obs import (
    NULL_SPAN,
    Span,
    Tracer,
    current_span,
    current_tracer,
    span,
)


def ticking_tracer(step: float = 0.5, name: str = "run") -> Tracer:
    """A tracer whose clock advances ``step`` seconds per reading."""
    counter = iter(range(100_000))
    return Tracer(name=name, clock=lambda: next(counter) * step)


class TestInactiveTracing:
    def test_span_yields_the_null_singleton_when_no_tracer_is_active(self):
        assert current_tracer() is None
        with span("anything", key="value") as sp:
            assert sp is NULL_SPAN
        assert current_span() is None

    def test_null_span_swallows_all_recording(self):
        with span("x") as sp:
            sp.set(a=1)
            sp.inc("ticks", 5)
            sp.event("boom", detail="ignored")
        assert NULL_SPAN.attributes == {}
        assert NULL_SPAN.counters == {}
        assert NULL_SPAN.events == []


class TestNesting:
    def test_children_nest_under_the_active_span(self):
        tracer = ticking_tracer()
        with tracer.activate() as root:
            assert current_tracer() is tracer
            assert current_span() is root
            with span("round", index=0) as outer:
                assert current_span() is outer
                with span("solve") as inner:
                    assert current_span() is inner
                assert current_span() is outer
        assert current_span() is None
        (round_span,) = tracer.root.children
        assert round_span.name == "round"
        assert round_span.attributes == {"index": 0}
        (solve_span,) = round_span.children
        assert solve_span.name == "solve"

    def test_deterministic_timestamps_with_injected_clock(self):
        tracer = ticking_tracer(step=0.5)
        with tracer.activate():
            with span("a"):      # starts at 0.5, ends at 1.0
                pass
            with span("b"):      # starts at 1.5, ends at 2.0
                pass
        a, b = tracer.root.children
        assert (a.start, a.end) == (0.5, 1.0)
        assert (b.start, b.end) == (1.5, 2.0)
        assert a.duration == 0.5
        assert tracer.root.end == 2.5

    def test_counters_accumulate_and_events_are_timestamped(self):
        tracer = ticking_tracer(step=1.0)
        with tracer.activate():
            with span("solve") as sp:
                sp.inc("nodes", 3)
                sp.inc("nodes", 2)
                sp.event("improving_solution", objective=42)
        (solve,) = tracer.root.children
        assert solve.counters == {"nodes": 5}
        (event,) = solve.events
        assert event["name"] == "improving_solution"
        assert event["attributes"] == {"objective": 42}
        assert solve.start < event["at"] <= solve.end

    def test_start_and_finish_are_idempotent(self):
        tracer = ticking_tracer()
        tracer.start()
        origin_epoch = tracer.started_at
        tracer.start()
        assert tracer.started_at == origin_epoch
        tracer.finish()
        end = tracer.root.end
        tracer.finish()
        assert tracer.root.end == end


class TestSerialization:
    def test_to_dict_round_trips_byte_stably(self):
        tracer = ticking_tracer()
        with tracer.activate():
            with span("round", index=1) as sp:
                sp.inc("moves", 2)
                sp.event("mark")
                with span("solve"):
                    pass
        document = tracer.root.to_dict()
        assert Span.from_dict(document).to_dict() == document

    def test_empty_collections_are_omitted(self):
        sp = Span("bare", start=1.0)
        sp.end = 2.0
        assert sp.to_dict() == {"name": "bare", "start": 1.0, "end": 2.0}

    def test_open_span_serializes_with_null_end(self):
        tracer = ticking_tracer()
        tracer.start()
        snapshot = tracer.to_dict()
        assert snapshot["root"]["end"] is None
        assert snapshot["version"] == 1

    def test_shift_translates_the_whole_subtree(self):
        sp = Span("zone", start=1.0)
        sp.end = 2.0
        sp.event("mark")
        child = Span("cp.solve", start=1.25)
        child.end = 1.75
        sp.children.append(child)
        sp.shift(10.0)
        assert (sp.start, sp.end) == (11.0, 12.0)
        assert (child.start, child.end) == (11.25, 11.75)
        assert sp.events[0]["at"] == 11.0


class TestAdoption:
    def test_adopt_grafts_a_worker_trace_with_offset(self):
        worker = ticking_tracer(step=0.25, name="zone")
        with worker.activate() as root:
            root.set(zone=3, remote=True)
            with span("cp.solve") as sp:
                sp.inc("nodes", 7)
        shipped = worker.to_dict()

        parent = ticking_tracer(step=1.0)
        with parent.activate() as root:
            with span("solve") as solve_span:
                adopted = parent.adopt(solve_span, shipped, offset=100.0)
        assert adopted.name == "zone"
        assert adopted.attributes["adopted"] is True
        assert adopted.attributes["zone"] == 3
        assert adopted.start == 100.0
        (cp,) = adopted.children
        assert cp.counters == {"nodes": 7}
        assert cp.start == 100.25
        # The graft is reachable from the parent's tree.
        names = [node.name for node in parent.root.walk()]
        assert names == ["run", "solve", "zone", "cp.solve"]

    def test_adopt_accepts_a_bare_span_dict(self):
        parent = ticking_tracer()
        with parent.activate() as root:
            node = parent.adopt(root, {"name": "zone", "start": 0.0, "end": 1.0})
        assert node.name == "zone"


class TestThreads:
    def test_context_does_not_leak_into_new_threads(self):
        tracer = ticking_tracer()
        seen = {}

        def worker():
            seen["tracer"] = current_tracer()
            with span("in-thread") as sp:
                seen["span"] = sp

        with tracer.activate():
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["tracer"] is None
        assert seen["span"] is NULL_SPAN
        assert tracer.root.children == []

    def test_live_snapshot_from_another_thread(self):
        tracer = ticking_tracer()
        snapshots = []
        with tracer.activate():
            with span("round"):
                thread = threading.Thread(
                    target=lambda: snapshots.append(tracer.to_dict())
                )
                thread.start()
                thread.join()
        (snapshot,) = snapshots
        (round_dict,) = snapshot["root"]["children"]
        assert round_dict["name"] == "round"
        assert round_dict["end"] is None  # still open when snapshotted
