"""Trace summarization and diffing (``repro.obs.summary``)."""

from __future__ import annotations

import pytest

from repro.obs import (
    Tracer,
    diff_traces,
    format_diff,
    format_summary,
    load_trace,
    phase_totals,
    solver_totals,
    span,
    summarize,
    top_spans,
)


def _trace(step: float = 0.5) -> dict:
    counter = iter(range(10_000))
    tracer = Tracer(clock=lambda: next(counter) * step)
    with tracer.activate():
        for index in range(2):
            with span("round", index=index):
                with span("cp.solve") as solve:
                    solve.inc("nodes", 5)
                    solve.inc("backtracks", 2)
    return tracer.to_dict()


class TestLoadTrace:
    def test_accepts_all_document_shapes(self):
        trace = _trace()
        assert load_trace(trace).name == "run"
        assert load_trace({"trace": trace}).name == "run"
        assert load_trace(trace["root"]).name == "run"

    def test_rejects_traceless_documents(self):
        with pytest.raises(ValueError):
            load_trace({"makespan": 2.0})
        with pytest.raises(ValueError):
            load_trace("not a dict")


class TestPhaseTotals:
    def test_self_time_excludes_children(self):
        # Injected clock, step 0.5: every span boundary is one tick, so
        # round #0 spans ticks [1..4] (1.5 s) with cp.solve at [2..3].
        totals = phase_totals(load_trace(_trace()))
        assert totals["round"]["count"] == 2
        assert totals["cp.solve"]["count"] == 2
        assert totals["round"]["total_s"] == pytest.approx(3.0)
        assert totals["cp.solve"]["total_s"] == pytest.approx(1.0)
        assert totals["round"]["self_s"] == pytest.approx(2.0)
        assert totals["round"]["max_s"] == pytest.approx(1.5)

    def test_open_spans_count_zero_duration(self):
        tracer = Tracer()
        tracer.start()
        totals = phase_totals(load_trace(tracer.to_dict()))
        assert totals["run"]["total_s"] == 0.0


class TestSolverTotals:
    def test_counters_sum_over_cp_solve_spans(self):
        totals = solver_totals(load_trace(_trace()))
        assert totals == {
            "solves": 2,
            "nodes": 10,
            "backtracks": 4,
            "propagations": 0,
            "solutions": 0,
        }


class TestTopSpansAndSummary:
    def test_top_spans_are_sorted_longest_first(self):
        ranked = top_spans(load_trace(_trace()), limit=3)
        assert len(ranked) == 3
        assert ranked[0]["name"] == "run"
        durations = [entry["duration_s"] for entry in ranked]
        assert durations == sorted(durations, reverse=True)

    def test_summarize_and_format(self):
        summary = summarize(_trace())
        assert summary["root"] == "run"
        assert summary["solver"]["solves"] == 2
        text = format_summary(summary)
        assert "round" in text
        assert "solver: solves=2" in text

    def test_limit_bounds_the_span_list(self):
        assert len(summarize(_trace(), limit=1)["top_spans"]) == 1


class TestDiff:
    def test_ratio_and_delta_per_phase(self):
        before, after = _trace(step=1.0), _trace(step=0.5)
        diff = diff_traces(before, after)
        round_diff = diff["phases"]["round"]
        assert round_diff["before_s"] == pytest.approx(6.0)
        assert round_diff["after_s"] == pytest.approx(3.0)
        assert round_diff["ratio"] == pytest.approx(0.5)
        assert round_diff["delta_s"] == pytest.approx(-3.0)
        assert round_diff["before_count"] == round_diff["after_count"] == 2
        assert diff["solver"]["nodes"] == {"before": 10, "after": 10}

    def test_one_sided_phase_has_no_ratio(self):
        counter = iter(range(100))
        other = Tracer(clock=lambda: next(counter) * 0.5)
        with other.activate():
            with span("execute"):
                pass
        diff = diff_traces(_trace(), other.to_dict())
        assert diff["phases"]["execute"]["ratio"] is None
        assert diff["phases"]["execute"]["before_count"] == 0

    def test_format_diff_renders_every_phase(self):
        text = format_diff(diff_traces(_trace(), _trace()))
        assert "round" in text
        assert "1.00x" in text
        assert "solver:" in text
