"""Chrome trace-event export and validation (``repro.obs.export``)."""

from __future__ import annotations

import json

import pytest

from repro.obs import Tracer, span, to_chrome_trace, validate_chrome_trace


def _sample_trace() -> dict:
    counter = iter(range(1000))
    tracer = Tracer(clock=lambda: next(counter) * 0.5)
    with tracer.activate() as root:
        root.set(policy="consolidation")
        with span("round", index=0) as sp:
            sp.event("mark", detail=1)
            with span("solve") as solve:
                solve.inc("nodes", 4)
    return tracer.to_dict()


class TestToChromeTrace:
    def test_complete_events_carry_microsecond_timestamps(self):
        document = to_chrome_trace(_sample_trace())
        assert document["displayTimeUnit"] == "ms"
        spans = {
            e["name"]: e for e in document["traceEvents"] if e["ph"] == "X"
        }
        assert set(spans) == {"run", "round", "solve"}
        # injected clock: round opens at tick 1 (0.5 s) -> 500000 us.
        assert spans["round"]["ts"] == pytest.approx(500_000.0)
        assert spans["solve"]["args"] == {"nodes": 4}
        assert spans["run"]["args"] == {"policy": "consolidation"}

    def test_metadata_and_instant_events(self):
        document = to_chrome_trace(_sample_trace(), process_name="demo")
        meta = [e for e in document["traceEvents"] if e["ph"] == "M"]
        assert meta[0]["args"] == {"name": "demo"}
        instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["mark"]
        assert instants[0]["s"] == "t"
        assert instants[0]["args"] == {"detail": 1}

    def test_remote_subtree_gets_its_own_track(self):
        counter = iter(range(1000))
        tracer = Tracer(clock=lambda: next(counter) * 0.5)
        with tracer.activate() as root:
            with span("solve") as solve_span:
                tracer.adopt(
                    solve_span,
                    {
                        "name": "zone",
                        "start": 0.0,
                        "end": 1.0,
                        "attributes": {"remote": True},
                        "children": [
                            {"name": "cp.solve", "start": 0.1, "end": 0.9}
                        ],
                    },
                )
        document = to_chrome_trace(tracer.to_dict())
        tid_of = {
            e["name"]: e["tid"]
            for e in document["traceEvents"]
            if e["ph"] == "X"
        }
        assert tid_of["run"] == tid_of["solve"] == 1
        assert tid_of["zone"] != 1
        assert tid_of["cp.solve"] == tid_of["zone"]
        assert validate_chrome_trace(document) == []

    def test_open_spans_clamp_to_the_horizon(self):
        counter = iter(range(1000))
        tracer = Tracer(clock=lambda: next(counter) * 0.5)
        tracer.start()
        with tracer.activate():
            with span("round"):
                document = to_chrome_trace(tracer.to_dict())
        errors = validate_chrome_trace(document)
        assert errors == []
        for event in document["traceEvents"]:
            if event["ph"] == "X":
                assert event["dur"] >= 0

    def test_accepts_runresult_shaped_documents(self):
        trace = _sample_trace()
        wrapped = {"makespan": 1.0, "trace": trace}
        assert to_chrome_trace(wrapped) == to_chrome_trace(trace)
        bare = trace["root"]
        assert to_chrome_trace(bare) == to_chrome_trace(trace)

    def test_rejects_non_trace_documents(self):
        with pytest.raises(ValueError):
            to_chrome_trace({"makespan": 1.0})

    def test_export_is_json_serializable(self):
        document = to_chrome_trace(_sample_trace())
        assert validate_chrome_trace(json.loads(json.dumps(document))) == []


class TestValidateChromeTrace:
    def test_flags_missing_trace_events(self):
        assert validate_chrome_trace({}) == [
            "traceEvents is missing or not a list"
        ]
        assert "traceEvents is empty" in validate_chrome_trace(
            {"traceEvents": []}
        )

    def test_flags_unknown_phases_and_missing_keys(self):
        errors = validate_chrome_trace(
            {"traceEvents": [{"ph": "Z"}, {"ph": "X", "ts": -1.0}]}
        )
        assert any("unknown phase" in error for error in errors)
        assert any("bad ts" in error for error in errors)

    def test_flags_overlapping_spans_on_one_track(self):
        document = {
            "traceEvents": [
                {
                    "ph": "X", "name": "a", "pid": 1, "tid": 1,
                    "ts": 0.0, "dur": 100.0,
                },
                {
                    # Starts inside 'a' but ends beyond it: not a nesting.
                    "ph": "X", "name": "b", "pid": 1, "tid": 1,
                    "ts": 50.0, "dur": 100.0,
                },
            ]
        }
        errors = validate_chrome_trace(document)
        assert any("overflows" in error for error in errors)

    def test_parallel_tracks_do_not_interfere(self):
        document = {
            "traceEvents": [
                {
                    "ph": "X", "name": "a", "pid": 1, "tid": 1,
                    "ts": 0.0, "dur": 100.0,
                },
                {
                    "ph": "X", "name": "b", "pid": 1, "tid": 2,
                    "ts": 50.0, "dur": 100.0,
                },
            ]
        }
        assert validate_chrome_trace(document) == []
