"""The ``repro-trace`` CLI (``repro.obs.cli``)."""

from __future__ import annotations

import json

import pytest

from repro.obs import Tracer, span, validate_chrome_trace
from repro.obs.cli import main


@pytest.fixture
def trace_file(tmp_path):
    counter = iter(range(1000))
    tracer = Tracer(clock=lambda: next(counter) * 0.5)
    with tracer.activate():
        with span("round", index=0):
            with span("cp.solve") as solve:
                solve.inc("nodes", 3)
    path = tmp_path / "run.trace.json"
    path.write_text(json.dumps(tracer.to_dict()))
    return path


class TestSummary:
    def test_renders_the_text_table(self, trace_file, capsys):
        assert main(["summary", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "trace 'run'" in out
        assert "cp.solve" in out

    def test_json_mode_emits_a_parsable_document(self, trace_file, capsys):
        assert main(["summary", str(trace_file), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["solver"]["nodes"] == 3

    def test_missing_file_exits_with_an_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no such file"):
            main(["summary", str(tmp_path / "absent.json")])

    def test_invalid_json_exits_with_an_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["summary", str(bad)])

    def test_traceless_document_exits_with_an_error(self, tmp_path):
        bad = tmp_path / "result.json"
        bad.write_text(json.dumps({"makespan": 1.0}))
        with pytest.raises(SystemExit, match="no trace found"):
            main(["summary", str(bad)])


class TestDiff:
    def test_diffs_two_files(self, trace_file, tmp_path, capsys):
        other = tmp_path / "other.trace.json"
        other.write_text(trace_file.read_text())
        assert main(["diff", str(trace_file), str(other)]) == 0
        out = capsys.readouterr().out
        assert "1.00x" in out

    def test_json_mode(self, trace_file, capsys):
        assert main(
            ["diff", str(trace_file), str(trace_file), "--json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["phases"]["round"]["ratio"] == 1.0


class TestExport:
    def test_writes_a_valid_chrome_document(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "out.chrome.json"
        assert main(["export", str(trace_file), "-o", str(out_path)]) == 0
        document = json.loads(out_path.read_text())
        assert validate_chrome_trace(document) == []
        assert "wrote" in capsys.readouterr().out

    def test_default_output_path_derives_from_the_input(self, trace_file):
        assert main(["export", str(trace_file)]) == 0
        assert trace_file.with_suffix(".chrome.json").exists()

    def test_runresult_documents_export_too(self, trace_file, tmp_path):
        wrapped = tmp_path / "result.json"
        wrapped.write_text(
            json.dumps({"trace": json.loads(trace_file.read_text())})
        )
        assert main(["export", str(wrapped), "-o", str(tmp_path / "w.json")]) == 0
