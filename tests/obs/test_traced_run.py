"""End-to-end tracing acceptance: a traced control-loop run records the
canonical phase tree, survives the RunResult round-trip byte-stably, and
exports to a schema-valid Chrome trace."""

from __future__ import annotations

import json

import pytest

from repro.api import Scenario
from repro.api.results import RunResult
from repro.constraints import Fence
from repro.model.configuration import Configuration
from repro.model.node import make_working_nodes
from repro.model.vm import VMState
from repro.obs import (
    Tracer,
    load_trace,
    phase_totals,
    span,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.scale import ParallelOptimizer
from repro.testing import make_vm
from repro.workloads import ChurnGenerator, ProblemClass, heterogeneous_nodes


def traced_scenario() -> Scenario:
    generator = ChurnGenerator(
        seed=23,
        mean_interarrival_s=30.0,
        vm_count_choices=(2, 3),
        problem_classes=(ProblemClass.W,),
    )
    return Scenario(
        nodes=heterogeneous_nodes(8, seed=5),
        workloads=generator.workloads(6),
        policy="consolidation",
        optimizer_timeout=2.0,
        engine="repair",
        trace=True,
    )


def structural_shape(node: dict):
    """A span tree with timestamps erased: what must be deterministic
    between two identical seeded runs."""
    return (
        node["name"],
        sorted(node.get("attributes", {}).items()),
        sorted(node.get("counters", {}).items()),
        [event["name"] for event in node.get("events", [])],
        [structural_shape(child) for child in node.get("children", [])],
    )


@pytest.fixture(scope="module")
def traced_result() -> RunResult:
    return traced_scenario().run()


class TestTracedControlLoop:
    def test_records_at_least_five_distinct_phases(self, traced_result):
        phases = set(phase_totals(load_trace(traced_result.to_dict())))
        expected = {
            "run", "round", "observe", "decide", "plan", "solve",
            "cp.solve", "repair-attempt", "execute",
        }
        assert expected <= phases
        assert len(phases) >= 5

    def test_round_spans_carry_loop_attributes(self, traced_result):
        root = load_trace(traced_result.to_dict())
        rounds = [node for node in root.walk() if node.name == "round"]
        assert [r.attributes["index"] for r in rounds] == list(
            range(len(rounds))
        )
        switched = [r for r in rounds if r.attributes.get("switched")]
        assert switched, "no round recorded a context switch"
        assert all("switch_cost" in r.attributes for r in switched)

    def test_execute_spans_count_the_plan_actions(self, traced_result):
        root = load_trace(traced_result.to_dict())
        executes = [n for n in root.walk() if n.name == "execute"]
        assert executes
        total_actions = sum(n.counters.get("actions", 0) for n in executes)
        assert total_actions == sum(
            s.migrations + s.runs + s.stops + s.suspends + s.resumes
            for s in traced_result.switches
        )

    def test_chrome_export_is_schema_valid(self, traced_result):
        document = to_chrome_trace(traced_result.to_dict())
        reparsed = json.loads(json.dumps(document))
        assert validate_chrome_trace(reparsed) == []

    def test_trace_survives_the_runresult_round_trip_byte_stably(
        self, traced_result
    ):
        canonical = json.dumps(traced_result.to_dict(), sort_keys=True)
        rebuilt = RunResult.from_dict(json.loads(canonical))
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) == canonical
        assert rebuilt.trace == traced_result.trace

    def test_span_tree_is_deterministic_modulo_timestamps(
        self, traced_result
    ):
        again = traced_scenario().run()
        assert structural_shape(
            again.trace["root"]
        ) == structural_shape(traced_result.trace["root"])

    def test_solver_metadata_reports_merged_search_counters(
        self, traced_result
    ):
        solver = traced_result.metadata["solver"]
        assert solver["rounds"], "no per-round solver statistics recorded"
        for key in ("nodes", "backtracks", "propagations", "solutions"):
            assert solver["totals"][key] == sum(
                entry[key] for entry in solver["rounds"]
            )
        # Wall-clock fields must stay out: the HTTP e2e test byte-compares
        # result documents across independent runs.
        assert all(
            "elapsed" not in entry and "timed_out" not in entry
            for entry in solver["rounds"]
        )

    def test_untraced_runs_emit_no_trace_key(self):
        scenario = traced_scenario()
        scenario.trace = False
        result = scenario.run()
        assert result.trace is None
        assert "trace" not in result.to_dict()


def _fenced_instance():
    configuration = Configuration(
        nodes=make_working_nodes(6, cpu_capacity=2, memory_capacity=4096)
    )
    for index in range(6):
        configuration.add_vm(make_vm(f"vm{index}", memory=1024, cpu=1))
        configuration.set_running(f"vm{index}", f"node-{index % 6}")
    states = {name: VMState.RUNNING for name in configuration.vm_names}
    constraints = [
        Fence(["vm0", "vm1", "vm2"], ("node-0", "node-1", "node-2")),
        Fence(["vm3", "vm4", "vm5"], ("node-3", "node-4", "node-5")),
    ]
    return configuration, states, constraints


class TestPartitionedTracing:
    def test_serial_zones_nest_in_process(self):
        configuration, states, constraints = _fenced_instance()
        tracer = Tracer()
        with tracer.activate():
            with span("solve", engine="partitioned"):
                ParallelOptimizer(
                    timeout=5.0, zone_executor="serial"
                ).optimize(configuration, states, constraints=constraints)
        root = load_trace(tracer.to_dict())
        zones = [n for n in root.walk() if n.name == "zone"]
        assert len(zones) == 2
        assert all(not z.attributes.get("adopted") for z in zones)
        assert all(
            child.name == "cp.solve" for z in zones for child in z.children
        )

    def test_process_zones_are_adopted_with_their_solver_counters(self):
        configuration, states, constraints = _fenced_instance()
        tracer = Tracer()
        with tracer.activate():
            with span("solve", engine="partitioned"):
                optimizer = ParallelOptimizer(
                    timeout=5.0, zone_executor="process", max_workers=2
                )
                try:
                    result = optimizer.optimize(
                        configuration, states, constraints=constraints
                    )
                finally:
                    optimizer.close()
        root = load_trace(tracer.to_dict())
        zones = sorted(
            (n for n in root.walk() if n.name == "zone"),
            key=lambda z: z.attributes["zone"],
        )
        assert [z.attributes["zone"] for z in zones] == [0, 1]
        assert all(z.attributes["adopted"] for z in zones)
        assert all(z.attributes["remote"] for z in zones)
        # Worker-side cp.solve spans came back through the pickle boundary
        # and their counters agree with the merged statistics.
        solver_nodes = sum(
            child.counters.get("nodes", 0)
            for z in zones
            for child in z.children
            if child.name == "cp.solve"
        )
        assert result.statistics is not None
        assert solver_nodes == result.statistics.nodes
        # The export gives each remote zone its own track and still nests.
        document = to_chrome_trace(tracer.to_dict())
        assert validate_chrome_trace(document) == []
        zone_tids = {
            e["tid"]
            for e in document["traceEvents"]
            if e.get("ph") == "X" and e["name"] == "zone"
        }
        assert len(zone_tids) == 2
        assert 1 not in zone_tids

    def test_untraced_process_solve_ships_no_trace(self):
        configuration, states, constraints = _fenced_instance()
        optimizer = ParallelOptimizer(
            timeout=5.0, zone_executor="process", max_workers=2
        )
        try:
            result = optimizer.optimize(
                configuration, states, constraints=constraints
            )
        finally:
            optimizer.close()
        assert result.statistics is not None
