"""Tests of the Entropy control loop simulation."""

import pytest

from repro.entropy.loop import EntropySimulation
from repro.model.node import make_working_nodes
from repro.model.vjob import VJob, VJobState
from repro.model.vm import VirtualMachine
from repro.workloads.traces import VJobWorkload, alternating_trace, constant_trace


def simple_workload(name, vm_count=2, memory=512, duration=120.0, priority=0, idle_head=0.0):
    """A vjob whose VMs compute for ``duration`` seconds (optionally after an
    idle phase)."""
    vms = [
        VirtualMachine(name=f"{name}.vm{i}", memory=memory, cpu_demand=1, vjob=name)
        for i in range(vm_count)
    ]
    vjob = VJob(name=name, vms=vms, priority=priority)
    if idle_head > 0:
        trace = alternating_trace([(idle_head, 0), (duration, 1)])
    else:
        trace = constant_trace(duration, cpu_demand=1)
    return VJobWorkload(vjob=vjob, traces={vm.name: trace for vm in vms})


class TestSingleVJob:
    def test_vjob_runs_to_completion(self):
        nodes = make_working_nodes(2, cpu_capacity=2, memory_capacity=4096)
        simulation = EntropySimulation(
            nodes, [simple_workload("j", vm_count=2, duration=100.0)],
            optimizer_timeout=2.0,
        )
        result = simulation.run()
        assert simulation.queue.get("j").is_terminated
        assert result.completion_times["j"] > 0
        assert result.makespan == result.completion_times["j"]
        # at least one context switch: the initial run of the vjob
        assert result.switch_count >= 1
        assert result.switches[0].runs == 2

    def test_progress_only_advances_while_running(self):
        nodes = make_working_nodes(1, cpu_capacity=1, memory_capacity=4096)
        # Two single-VM vjobs competing for one CPU: they cannot both run.
        workloads = [
            simple_workload("a", vm_count=1, duration=60.0, priority=1),
            simple_workload("b", vm_count=1, duration=60.0, priority=2),
        ]
        simulation = EntropySimulation(nodes, workloads, optimizer_timeout=2.0)
        result = simulation.run()
        assert simulation.queue.get("a").is_terminated
        assert simulation.queue.get("b").is_terminated
        # b can only finish after a released the CPU
        assert result.completion_times["b"] > result.completion_times["a"]


class TestOverloadHandling:
    def test_low_priority_vjob_is_suspended_then_resumed(self):
        nodes = make_working_nodes(1, cpu_capacity=1, memory_capacity=4096)
        # Both vjobs start idle, then compute: the cluster becomes overloaded
        # and the lower-priority vjob must be suspended.
        workloads = [
            simple_workload("high", vm_count=1, duration=90.0, priority=1, idle_head=60.0),
            simple_workload("low", vm_count=1, duration=90.0, priority=2, idle_head=60.0),
        ]
        simulation = EntropySimulation(nodes, workloads, optimizer_timeout=2.0)
        result = simulation.run()
        suspends = sum(s.suspends for s in result.switches)
        resumes = sum(s.resumes for s in result.switches)
        assert suspends >= 1
        assert resumes >= 1
        assert simulation.queue.get("high").is_terminated
        assert simulation.queue.get("low").is_terminated

    def test_configuration_stays_viable_after_every_switch(self):
        nodes = make_working_nodes(2, cpu_capacity=1, memory_capacity=2048)
        workloads = [
            simple_workload("a", vm_count=2, duration=80.0, priority=1, idle_head=30.0),
            simple_workload("b", vm_count=2, duration=80.0, priority=2, idle_head=30.0),
        ]
        simulation = EntropySimulation(nodes, workloads, optimizer_timeout=2.0)
        simulation.run()
        assert simulation.cluster.configuration.is_viable()


class TestRecords:
    def test_utilization_samples_are_collected(self):
        nodes = make_working_nodes(2, cpu_capacity=2, memory_capacity=4096)
        simulation = EntropySimulation(
            nodes, [simple_workload("j", vm_count=2, duration=100.0)],
            optimizer_timeout=2.0,
        )
        result = simulation.run()
        assert result.utilization
        assert all(0.0 <= s.cpu_fraction <= 1.0 for s in result.utilization)
        peak_memory = max(s.memory_used_mb for s in result.utilization)
        assert peak_memory == 1024  # two 512 MB VMs

    def test_switch_records_have_costs_and_durations(self):
        nodes = make_working_nodes(2, cpu_capacity=1, memory_capacity=2048)
        workloads = [
            simple_workload("a", vm_count=2, duration=80.0, priority=1, idle_head=30.0),
            simple_workload("b", vm_count=2, duration=80.0, priority=2, idle_head=30.0),
        ]
        simulation = EntropySimulation(nodes, workloads, optimizer_timeout=2.0)
        result = simulation.run()
        for record in result.switches:
            assert record.duration >= 0.0
            assert record.cost >= 0
            assert record.action_count >= 0
        assert result.average_switch_duration >= 0.0

    def test_max_time_bounds_the_simulation(self):
        nodes = make_working_nodes(1, cpu_capacity=1, memory_capacity=512)
        # The VM can never run (not enough memory): the loop must stop anyway.
        workloads = [simple_workload("stuck", vm_count=1, memory=1024, duration=50.0)]
        simulation = EntropySimulation(
            nodes, workloads, optimizer_timeout=1.0, max_time=300.0
        )
        result = simulation.run()
        assert result.makespan <= 330.0
        assert not simulation.queue.get("stuck").is_terminated

    def test_submission_times_are_honoured(self):
        nodes = make_working_nodes(2, cpu_capacity=2, memory_capacity=4096)
        early = simple_workload("early", vm_count=1, duration=60.0, priority=1)
        late = simple_workload("late", vm_count=1, duration=60.0, priority=2)
        late.vjob.submitted_at = 120.0
        simulation = EntropySimulation(nodes, [early, late], optimizer_timeout=2.0)
        result = simulation.run()
        assert result.completion_times["late"] >= 120.0
