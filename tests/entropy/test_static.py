"""Tests of the static-allocation (FCFS) baseline simulator."""

import pytest

from repro.entropy.static import StaticAllocationSimulator
from repro.model.node import make_working_nodes
from repro.model.vjob import VJob
from repro.model.vm import VirtualMachine
from repro.workloads.traces import VJobWorkload, alternating_trace


def workload(name, vm_count, duration=100.0, busy_fraction=0.5, memory=512, priority=0):
    vms = [
        VirtualMachine(name=f"{name}.vm{i}", memory=memory, cpu_demand=1, vjob=name)
        for i in range(vm_count)
    ]
    vjob = VJob(name=name, vms=vms, priority=priority)
    busy = duration * busy_fraction
    trace = alternating_trace([(busy, 1), (duration - busy, 0)])
    return VJobWorkload(vjob=vjob, traces={vm.name: trace for vm in vms})


class TestStaticRun:
    def test_jobs_book_their_peak_demand(self):
        nodes = make_working_nodes(2, cpu_capacity=2, memory_capacity=4096)
        workloads = [workload("a", vm_count=4), workload("b", vm_count=4)]
        result = StaticAllocationSimulator(nodes, workloads).run()
        # 4 CPUs total: the two 4-CPU jobs cannot overlap
        a = result.schedule.allocation_of("a")
        b = result.schedule.allocation_of("b")
        assert b.start >= a.end or a.start >= b.end
        assert result.makespan == pytest.approx(200.0)

    def test_completion_times_reported_per_vjob(self):
        nodes = make_working_nodes(4, cpu_capacity=2, memory_capacity=4096)
        workloads = [workload("a", vm_count=2), workload("b", vm_count=2)]
        result = StaticAllocationSimulator(nodes, workloads).run()
        assert set(result.completion_times) == {"a", "b"}
        assert all(v > 0 for v in result.completion_times.values())

    def test_utilization_reflects_actual_demand_not_booking(self):
        nodes = make_working_nodes(2, cpu_capacity=2, memory_capacity=4096)
        workloads = [workload("a", vm_count=4, busy_fraction=0.5)]
        result = StaticAllocationSimulator(nodes, workloads, sample_period=10.0).run()
        early = result.utilization[0]
        late = [s for s in result.utilization if s.time >= 60.0][0]
        assert early.cpu_used_units == 4       # all VMs computing
        assert late.cpu_used_units == 0        # booked but idle
        assert late.memory_used_mb == 4 * 512  # memory stays claimed

    def test_memory_dimension_limits_concurrency(self):
        nodes = make_working_nodes(1, cpu_capacity=8, memory_capacity=2048)
        workloads = [
            workload("fat1", vm_count=2, memory=1024),
            workload("fat2", vm_count=2, memory=1024),
        ]
        result = StaticAllocationSimulator(nodes, workloads).run()
        a = result.schedule.allocation_of("fat1")
        b = result.schedule.allocation_of("fat2")
        assert b.start >= a.end or a.start >= b.end

    def test_backfilling_none_is_supported(self):
        nodes = make_working_nodes(2, cpu_capacity=2, memory_capacity=4096)
        workloads = [workload("a", vm_count=4), workload("b", vm_count=1)]
        easy = StaticAllocationSimulator(nodes, workloads, backfilling="easy").run()
        plain = StaticAllocationSimulator(nodes, workloads, backfilling="none").run()
        assert easy.makespan <= plain.makespan
