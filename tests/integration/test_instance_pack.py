"""Golden regression for the shipped instance pack and its baseline floors.

The pack under ``src/repro/instances/pack/`` is a *committed artifact*: the
instances are rebuilt from their seeds and compared byte-for-byte, and the
baseline scoreboard is re-run over them and compared byte-for-byte.  Any
drift — a generator change, a solver change, a policy change — shows up as a
reviewable golden diff instead of silently moving the floors.

Regenerate after an intentional change with::

    REPRO_UPDATE_GOLDENS=1 python -m pytest tests/integration/test_instance_pack.py

and commit the diff (instances *and* scoreboard together — the scoreboard
embeds the instance fingerprints).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.instances.baselines import (
    BASELINE_POLICIES,
    baseline_scoreboard,
    floor_violations,
    load_scoreboard,
    scoreboard_to_json,
)
from repro.instances.format import fingerprint_of, instance_to_json, load_instance
from repro.instances.pack import (
    PACK_DIR,
    SCOREBOARD_PATH,
    build_pack,
    load_pack_instance,
    pack_instance_names,
    write_pack,
)
from repro.instances.verifier import verify_submission

UPDATE = os.environ.get("REPRO_UPDATE_GOLDENS") == "1"


@pytest.fixture(scope="module", autouse=True)
def regenerate_if_requested():
    if UPDATE:
        write_pack()
        board = baseline_scoreboard()
        SCOREBOARD_PATH.write_text(scoreboard_to_json(board))
    yield


class TestPackGoldens:
    def test_pack_lists_the_expected_tiers(self):
        assert pack_instance_names() == [
            "medium-faulty",
            "small-mix",
            "small-spread",
        ]

    def test_committed_instances_match_their_seeds_byte_for_byte(self):
        built = {instance.name: instance for instance in build_pack()}
        assert sorted(built) == pack_instance_names()
        for name, instance in built.items():
            committed = (PACK_DIR / f"{name}.json").read_text()
            assert instance_to_json(instance) + "\n" == committed, (
                f"pack instance {name} drifted from its seed build; if "
                "intentional, regenerate with REPRO_UPDATE_GOLDENS=1"
            )

    def test_committed_fingerprints_verify(self):
        for name in pack_instance_names():
            # load_instance re-fingerprints and raises on drift
            instance = load_instance(PACK_DIR / f"{name}.json")
            assert instance.fingerprint == fingerprint_of(instance.to_dict())

    def test_pack_instances_are_all_waiting(self):
        for name in pack_instance_names():
            instance = load_pack_instance(name)
            assert not instance.states and not instance.placement

    def test_empty_plan_verifies_against_every_pack_instance(self):
        """The committed instances must be scoreable by the standalone
        verifier (an empty plan passes: all-waiting is viable)."""
        for name in pack_instance_names():
            report = verify_submission(
                load_pack_instance(name), {"plan": {"pools": []}}
            )
            assert report.passed, (name, report.to_dict())


class TestScoreboardGoldens:
    @pytest.fixture(scope="class")
    def fresh_board(self):
        return baseline_scoreboard()

    def test_committed_scoreboard_matches_rerun_byte_for_byte(
        self, fresh_board
    ):
        assert SCOREBOARD_PATH.exists(), (
            "scoreboard golden missing; run with REPRO_UPDATE_GOLDENS=1"
        )
        assert scoreboard_to_json(fresh_board) == SCOREBOARD_PATH.read_text(), (
            "baseline scoreboard drifted; if intentional, regenerate with "
            "REPRO_UPDATE_GOLDENS=1 and review the diff"
        )

    def test_scoreboard_fingerprint_is_self_consistent(self):
        board = load_scoreboard(SCOREBOARD_PATH)
        claimed = board["fingerprint"]
        del board["fingerprint"]
        assert claimed == fingerprint_of(board)

    def test_scoreboard_embeds_current_instance_fingerprints(self):
        board = load_scoreboard(SCOREBOARD_PATH)
        for name, entry in board["instances"].items():
            assert entry["fingerprint"] == load_pack_instance(name).fingerprint

    def test_every_policy_scored_on_every_instance(self):
        board = load_scoreboard(SCOREBOARD_PATH)
        for name, entry in board["instances"].items():
            assert sorted(entry["policies"]) == sorted(BASELINE_POLICIES), name
            for policy, scores in entry["policies"].items():
                assert scores["makespan"] > 0, (name, policy)

    def test_consolidation_beats_the_static_floors(self):
        """ISSUE acceptance: the committed scoreboard shows dynamic
        consolidation at or under the FFD/FCFS floors on every pack
        instance and strictly better in aggregate (the paper's headline
        ordering, in miniature)."""
        board = load_scoreboard(SCOREBOARD_PATH)
        assert floor_violations(board) == []
