"""Golden regression for the seeded end-to-end chaos scenario.

The canonical chaos run — a node crash at t = 120 s under churn arrivals on a
heterogeneous fleet — is executed through the ``Scenario`` facade and every
observable output (completion times, switch records, fault timeline, repair
latencies, SLA/lost-vjob accounting) is compared byte-for-byte against
``tests/integration/golden/chaos_recovery.json``.  The same scenario is the
step-by-step walkthrough of ``docs/SIMULATOR_GUIDE.md``; regenerate after an
intentional behaviour change with::

    REPRO_UPDATE_GOLDENS=1 python -m pytest tests/integration/test_chaos_golden.py
"""

from __future__ import annotations

from repro import FaultSchedule, Scenario
from repro.workloads import ChurnGenerator, ProblemClass, heterogeneous_nodes

from test_golden_plans import OPTIMIZER_TIMEOUT_S, check_golden


def chaos_scenario() -> Scenario:
    """The canonical chaos scenario (also documented in the simulator guide):
    5 mixed nodes, 5 churn-arriving vjobs, node-1 crashing at t = 120 s."""
    generator = ChurnGenerator(
        seed=11,
        mean_interarrival_s=45.0,
        vm_count_choices=(2, 3),
        problem_classes=(ProblemClass.W,),
    )
    return Scenario(
        nodes=heterogeneous_nodes(5, seed=7),
        workloads=generator.workloads(5),
        policy="consolidation",
        optimizer_timeout=OPTIMIZER_TIMEOUT_S,
        faults=FaultSchedule().node_crash("node-1", at=120.0),
        sla_factor=6.0,
    )


def result_to_dict(result) -> dict:
    return {
        "policy": result.policy,
        "makespan": round(result.makespan, 6),
        "completion_times": {
            name: round(time, 6)
            for name, time in sorted(result.completion_times.items())
        },
        "switches": [
            {
                "time": round(s.time, 6),
                "cost": s.cost,
                "duration": round(s.duration, 6),
                "migrations": s.migrations,
                "runs": s.runs,
                "stops": s.stops,
                "suspends": s.suspends,
                "resumes": s.resumes,
                "local_resumes": s.local_resumes,
                "used_fallback": s.used_fallback,
                "failed_migrations": s.failed_migrations,
            }
            for s in result.switches
        ],
        "faults": [
            {
                "time": round(f.time, 6),
                "kind": f.kind,
                "target": f.target,
                "detected_at": round(f.detected_at, 6),
                "affected_vjobs": list(f.affected_vjobs),
                "detail": f.detail,
            }
            for f in result.faults
        ],
        "repair_latencies": {
            name: round(latency, 6)
            for name, latency in sorted(result.repair_latencies.items())
        },
        "sla_violations": list(result.sla_violations),
        "unfinished_vjobs": list(result.unfinished_vjobs),
        "wasted_migrations": result.wasted_migrations,
    }


class TestChaosRecoveryGolden:
    def test_crash_under_churn_recovers_and_matches_golden(self):
        result = chaos_scenario().run()

        # the headline invariants of the acceptance scenario, asserted
        # directly so a golden regeneration cannot silently weaken them
        assert result.unfinished_vjobs == [], "a vjob was lost to the crash"
        assert result.repair_latencies, "the crash repaired nobody?"
        assert all(l > 0 for l in result.repair_latencies.values())
        assert [f.kind for f in result.faults] == ["node_crash"]

        check_golden("chaos_recovery", result_to_dict(result))

    def test_chaos_run_is_deterministic(self):
        """Two fresh builds of the same scenario produce identical results —
        the property the golden file relies on."""
        first = result_to_dict(chaos_scenario().run())
        second = result_to_dict(chaos_scenario().run())
        assert first == second
