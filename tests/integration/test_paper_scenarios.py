"""Integration tests reproducing the paper's illustrative scenarios end to end.

These tests exercise the whole stack (model -> decision -> optimizer ->
planner -> executor) on the concrete examples the paper uses to explain the
mechanism: the Figure 6 RJSP construction, the Figure 7 sequential constraint,
the Figure 8 inter-dependent cycle, the Figure 9 two-pool plan, and a reduced
version of the Section 5.2 campaign.
"""

import pytest

from repro.analysis.metrics import makespan_reduction, switch_statistics
from repro.core import ClusterContextSwitch, build_plan, plan_cost
from repro.core.actions import ActionKind
from repro.decision import ConsolidationDecisionModule
from repro.entropy import EntropySimulation, StaticAllocationSimulator
from repro.model import Configuration, VJobQueue, VirtualMachine, VJob, make_working_nodes
from repro.model.vm import VMState
from repro.sim import PlanExecutor, SimulatedCluster
from repro.workloads import (
    Benchmark,
    NASGridSpec,
    ProblemClass,
    TraceConfigurationGenerator,
    make_nasgrid_vjob,
)


class TestFigure6EndToEnd:
    """Three vjobs on three uniprocessor nodes: vjob2 ends up suspended."""

    def _build(self):
        nodes = make_working_nodes(3, cpu_capacity=1, memory_capacity=2048)
        configuration = Configuration(nodes=nodes)
        vjobs = []
        for name, count, priority in [("vjob1", 2, 1), ("vjob2", 2, 2), ("vjob3", 1, 3)]:
            vms = [
                VirtualMachine(
                    name=f"{name}.vm{i}", memory=512, cpu_demand=1, vjob=name
                )
                for i in range(count)
            ]
            vjobs.append(VJob(name=name, vms=vms, priority=priority))
            for vm in vms:
                configuration.add_vm(vm)
        vjobs[0].run()
        vjobs[1].run()
        configuration.set_running("vjob1.vm0", "node-0")
        configuration.set_running("vjob1.vm1", "node-1")
        configuration.set_running("vjob2.vm0", "node-2")
        configuration.set_running("vjob2.vm1", "node-2")
        return configuration, VJobQueue(vjobs)

    def test_context_switch_suspends_vjob2_and_runs_vjob3(self):
        configuration, queue = self._build()
        module = ConsolidationDecisionModule()
        decision = module.decide(configuration, queue)
        switcher = ClusterContextSwitch(optimizer_timeout=5)
        report = switcher.compute(
            configuration,
            decision.vm_states,
            vjob_of_vm=module.vjob_index(queue),
            fallback_target=decision.fallback_target,
        )
        final = report.plan.apply()
        assert final.is_viable()
        assert final.state_of("vjob2.vm0") is VMState.SLEEPING
        assert final.state_of("vjob2.vm1") is VMState.SLEEPING
        assert final.state_of("vjob3.vm0") is VMState.RUNNING
        assert final.state_of("vjob1.vm0") is VMState.RUNNING
        # vjob1's VMs do not move: the optimizer keeps them in place.
        assert final.location_of("vjob1.vm0") == "node-0"
        assert final.location_of("vjob1.vm1") == "node-1"


class TestFigure9StylePlan:
    def test_two_pool_plan_with_suspend_then_resume_and_run(self):
        nodes = make_working_nodes(2, cpu_capacity=1, memory_capacity=2048)
        configuration = Configuration(nodes=nodes)
        configuration.add_vm(VirtualMachine("vm3", memory=1024, cpu_demand=1))
        configuration.add_vm(VirtualMachine("vm5", memory=1024, cpu_demand=1))
        configuration.add_vm(VirtualMachine("vm6", memory=512, cpu_demand=1))
        configuration.set_running("vm3", "node-0")
        configuration.set_sleeping("vm5", "node-0")

        target = configuration.copy()
        target.set_sleeping("vm3")
        target.set_running("vm5", "node-0")
        target.set_running("vm6", "node-1")

        plan = build_plan(configuration, target)
        assert len(plan.pools) == 2
        first_kinds = set(plan.pools[0].kinds())
        assert ActionKind.SUSPEND in first_kinds
        assert ActionKind.RUN in first_kinds or ActionKind.RUN in set(plan.pools[1].kinds())
        assert ActionKind.RESUME in set(plan.pools[1].kinds())
        plan.check_reaches(target)

        # execute it on the simulated cluster and check the durations add up
        cluster = SimulatedCluster(nodes=nodes)
        for vm in configuration.vms:
            cluster.add_vm(vm)
        cluster.configuration.set_running("vm3", "node-0")
        cluster.configuration.set_sleeping("vm5", "node-0")
        report = PlanExecutor().execute(plan, cluster)
        assert cluster.configuration.same_assignment(target)
        assert report.duration >= max(a.duration for a in report.actions)


class TestScalabilityScenario:
    """A reduced Figure 10 point: Entropy's plan is much cheaper than FFD's."""

    def test_entropy_beats_ffd_on_a_generated_configuration(self):
        scenario = TraceConfigurationGenerator(seed=42).generate(54)
        configuration = scenario.configuration
        module = ConsolidationDecisionModule()
        decision = module.decide(configuration, scenario.queue)
        assert decision.fallback_target is not None

        ffd_plan = build_plan(
            configuration, decision.fallback_target, scenario.vjob_of_vm()
        )
        ffd_cost = plan_cost(ffd_plan).total

        switcher = ClusterContextSwitch(optimizer_timeout=5)
        report = switcher.compute(
            configuration,
            decision.vm_states,
            vjob_of_vm=scenario.vjob_of_vm(),
            fallback_target=decision.fallback_target,
        )
        assert report.target.is_viable()
        assert report.total_cost <= ffd_cost
        if ffd_cost > 0:
            # the optimizer keeps running VMs in place, FFD repacks everything
            assert report.total_cost < ffd_cost


class TestReducedClusterCampaign:
    """A shrunk Section 5.2 campaign: dynamic consolidation beats the static
    allocation and the context switches stay short."""

    @pytest.fixture(scope="class")
    def campaign(self):
        workloads = [
            make_nasgrid_vjob(
                f"vjob{i}",
                NASGridSpec(
                    benchmark=[Benchmark.HC, Benchmark.VP, Benchmark.MB, Benchmark.ED][i % 4],
                    problem_class=ProblemClass.W,
                    vm_count=4,
                ),
                memory_mb=512,
                priority=i,
            )
            for i in range(4)
        ]
        nodes = make_working_nodes(4, cpu_capacity=2, memory_capacity=3584)
        entropy = EntropySimulation(nodes, workloads, optimizer_timeout=2.0).run()
        static = StaticAllocationSimulator(nodes, workloads).run()
        return entropy, static

    def test_all_vjobs_complete(self, campaign):
        entropy, _ = campaign
        assert len(entropy.completion_times) == 4

    def test_entropy_makespan_not_worse_than_static(self, campaign):
        entropy, static = campaign
        assert entropy.makespan <= static.makespan * 1.05
        assert makespan_reduction(static.makespan, entropy.makespan) >= -0.05

    def test_context_switch_statistics_are_sane(self, campaign):
        entropy, _ = campaign
        stats = switch_statistics(entropy.switches)
        assert stats.count >= 1
        assert 0.0 < stats.average_duration < 600.0

    def test_utilization_series_cover_the_run(self, campaign):
        entropy, static = campaign
        assert entropy.utilization[0].time == 0.0
        assert static.utilization[0].time == 0.0
        assert max(s.time for s in entropy.utilization) <= entropy.makespan + 600.0
