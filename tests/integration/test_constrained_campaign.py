"""Golden regression for the constrained end-to-end campaign.

The canonical constrained scenario — the ``examples/ha_maintenance.py``
story: a spread + elastically-fenced database vjob, a node drained by Ban,
churn arrivals, and a fence-node crash at t = 150 s — runs through the
``Scenario`` facade, and every observable output (completions, switches,
fault timeline, repair latencies, the constraint-violation timeline and the
post-repair catalog) is compared byte-for-byte against
``tests/integration/golden/constrained_campaign.json``.  Regenerate after an
intentional behaviour change with::

    REPRO_UPDATE_GOLDENS=1 python -m pytest tests/integration/test_constrained_campaign.py
"""

from __future__ import annotations

from repro import FaultSchedule, Scenario
from repro.constraints import Ban, Fence, Spread
from repro.model import make_working_nodes
from repro.testing import make_workload
from repro.workloads import ChurnGenerator, ProblemClass

from test_golden_plans import OPTIMIZER_TIMEOUT_S, check_golden


def constrained_scenario() -> Scenario:
    """The canonical constrained campaign (also the HA-maintenance example):
    5 nodes, a replicated db vjob + 3 churn vjobs, node-0 drained, the db
    spread and elastically fenced, fence node-2 crashing at t = 150 s."""
    database = make_workload("db", vm_count=2, duration=300.0)
    churn = ChurnGenerator(
        seed=11,
        mean_interarrival_s=60.0,
        vm_count_choices=(2, 3),
        problem_classes=(ProblemClass.W,),
    ).workloads(3)
    workloads = [database, *churn]
    every_vm = [vm for workload in workloads for vm in workload.vjob.vm_names]
    return Scenario(
        nodes=make_working_nodes(5, cpu_capacity=2, memory_capacity=3584),
        workloads=workloads,
        policy="consolidation",
        optimizer_timeout=OPTIMIZER_TIMEOUT_S,
        max_time=4 * 3600.0,
        faults=FaultSchedule().node_crash("node-2", at=150.0),
        sla_factor=6.0,
    ).with_constraints(
        Spread(["db.vm0", "db.vm1"]),
        Fence(["db.vm0", "db.vm1"], ["node-1", "node-2", "node-3"], elastic=True),
        Ban(every_vm, ["node-0"]),
    )


def result_to_dict(result) -> dict:
    return {
        "policy": result.policy,
        "makespan": round(result.makespan, 6),
        "completion_times": {
            name: round(time, 6)
            for name, time in sorted(result.completion_times.items())
        },
        "switches": [
            {
                "time": round(s.time, 6),
                "cost": s.cost,
                "duration": round(s.duration, 6),
                "migrations": s.migrations,
                "runs": s.runs,
                "stops": s.stops,
                "suspends": s.suspends,
                "resumes": s.resumes,
                "used_fallback": s.used_fallback,
            }
            for s in result.switches
        ],
        "faults": [
            {
                "time": round(f.time, 6),
                "kind": f.kind,
                "target": f.target,
                "affected_vjobs": list(f.affected_vjobs),
            }
            for f in result.faults
        ],
        "repair_latencies": {
            name: round(latency, 6)
            for name, latency in sorted(result.repair_latencies.items())
        },
        "constraint_violations": [
            {
                "time": round(v.time, 6),
                "constraint": v.constraint,
                "phase": v.phase,
                "stage": v.stage,
                "message": v.message,
            }
            for v in result.constraint_violations
        ],
        "constraint_violation_counts": dict(
            sorted(result.constraint_violation_counts.items())
        ),
        "declared_catalog": list(result.metadata.get("constraints", [])),
        "final_catalog": list(result.metadata.get("active_constraints", [])),
        "sla_violations": list(result.sla_violations),
        "unfinished_vjobs": list(result.unfinished_vjobs),
    }


class TestConstrainedCampaignGolden:
    def test_constrained_campaign_matches_golden(self):
        result = constrained_scenario().run()

        # the headline invariants of the acceptance scenario, asserted
        # directly so a golden regeneration cannot silently weaken them
        assert result.unfinished_vjobs == [], "a vjob was lost"
        assert result.repair_latencies.get("db") is not None
        assert result.honoured_constraints, (
            "the catalog must hold through the crash and every switch"
        )
        # the elastic fence repaired itself onto the surviving zone
        assert "Fence(db.vm0, db.vm1 | node-1, node-3)" in result.metadata[
            "active_constraints"
        ]

        check_golden("constrained_campaign", result_to_dict(result))

    def test_constrained_campaign_is_deterministic(self):
        first = result_to_dict(constrained_scenario().run())
        second = result_to_dict(constrained_scenario().run())
        assert first == second
