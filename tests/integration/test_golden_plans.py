"""Golden regression suite for the paper scenarios.

Every scenario the paper uses to explain the mechanism (the Figure 6 RJSP
construction, the Figure 7 sequential constraint, the Figure 8 inter-dependent
cycle, the Figure 9 two-pool plan) plus a reduced Section 5.2 campaign is run
end to end, and the produced plans, costs and campaign metrics are compared
*exactly* against expectation files checked in under
``tests/integration/golden/``.  Solver or planner refactors that change any
observable output therefore show up as a reviewable golden-file diff instead
of a silent behaviour drift.

Regenerate the expectations after an intentional change with::

    REPRO_UPDATE_GOLDENS=1 python -m pytest tests/integration/test_golden_plans.py

and commit the resulting diff.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.api import Scenario
from repro.core import ClusterContextSwitch, build_plan
from repro.decision import ConsolidationDecisionModule
from repro.model import Configuration, VJob, VJobQueue, VirtualMachine, make_working_nodes
from repro.workloads import Benchmark, NASGridSpec, ProblemClass, make_nasgrid_vjob

GOLDEN_DIR = Path(__file__).parent / "golden"
UPDATE = os.environ.get("REPRO_UPDATE_GOLDENS") == "1"

#: Generous CP budget: every scenario here is small enough to be solved to
#: proven optimality in milliseconds, so the timeout never triggers and the
#: outputs stay deterministic on slow CI machines.
OPTIMIZER_TIMEOUT_S = 30.0


def check_golden(name: str, actual: dict) -> None:
    path = GOLDEN_DIR / f"{name}.json"
    serialized = json.dumps(actual, indent=2, sort_keys=True)
    if UPDATE:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(serialized + "\n")
        return
    if not path.exists():
        pytest.fail(
            f"golden file {path} is missing; run with REPRO_UPDATE_GOLDENS=1 "
            "to create it"
        )
    expected = json.loads(path.read_text())
    assert json.loads(serialized) == expected, (
        f"{name} drifted from its golden expectation; if the change is "
        "intentional, regenerate with REPRO_UPDATE_GOLDENS=1 and review the diff"
    )


def plan_to_dict(plan) -> dict:
    return {
        "pools": [
            [
                {
                    "kind": action.kind.value,
                    "vm": action.vm,
                    "source": action.source(),
                    "destination": action.destination(),
                    "cost": action.cost(plan.source),
                }
                for action in pool
            ]
            for pool in plan.pools
        ]
    }


def report_to_dict(report) -> dict:
    final = report.plan.apply()
    return {
        "plan": plan_to_dict(report.plan),
        "total_cost": report.total_cost,
        "used_fallback": report.used_fallback,
        "final_states": {
            vm: final.state_of(vm).value for vm in sorted(final.vm_names)
        },
        "final_placement": {
            vm: final.location_of(vm) for vm in sorted(final.vm_names)
        },
    }


class TestFigureGoldens:
    def test_figure6_rjsp_context_switch(self):
        """Three vjobs on three uniprocessor nodes: vjob2 gets suspended so
        vjob3 can run (the Figure 6 walkthrough)."""
        nodes = make_working_nodes(3, cpu_capacity=1, memory_capacity=2048)
        configuration = Configuration(nodes=nodes)
        vjobs = []
        for name, count, priority in [("vjob1", 2, 1), ("vjob2", 2, 2), ("vjob3", 1, 3)]:
            vms = [
                VirtualMachine(name=f"{name}.vm{i}", memory=512, cpu_demand=1, vjob=name)
                for i in range(count)
            ]
            vjobs.append(VJob(name=name, vms=vms, priority=priority))
            for vm in vms:
                configuration.add_vm(vm)
        vjobs[0].run()
        vjobs[1].run()
        configuration.set_running("vjob1.vm0", "node-0")
        configuration.set_running("vjob1.vm1", "node-1")
        configuration.set_running("vjob2.vm0", "node-2")
        configuration.set_running("vjob2.vm1", "node-2")
        queue = VJobQueue(vjobs)

        module = ConsolidationDecisionModule()
        decision = module.decide(configuration, queue)
        switcher = ClusterContextSwitch(optimizer_timeout=OPTIMIZER_TIMEOUT_S)
        report = switcher.compute(
            configuration,
            decision.vm_states,
            vjob_of_vm=module.vjob_index(queue),
            fallback_target=decision.fallback_target,
        )
        actual = report_to_dict(report)
        actual["decision"] = {
            vm: state.value for vm, state in sorted(decision.vm_states.items())
        }
        check_golden("figure6", actual)

    def test_figure7_sequential_constraint(self):
        """migrate(vm1) can only start once suspend(vm2) has freed node-1."""
        nodes = make_working_nodes(2, cpu_capacity=1, memory_capacity=2048)
        configuration = Configuration(nodes=nodes)
        configuration.add_vm(VirtualMachine("vm1", memory=1536, cpu_demand=0))
        configuration.add_vm(VirtualMachine("vm2", memory=1024, cpu_demand=0))
        configuration.set_running("vm1", "node-0")
        configuration.set_running("vm2", "node-1")
        target = configuration.copy()
        target.set_sleeping("vm2")
        target.set_running("vm1", "node-1")

        plan = build_plan(configuration, target)
        plan.check_reaches(target)
        check_golden("figure7", plan_to_dict(plan))

    def test_figure8_interdependent_cycle(self):
        """Two VMs swapping full nodes: the cycle is broken through a pivot."""
        nodes = make_working_nodes(2, cpu_capacity=1, memory_capacity=2048)
        nodes += make_working_nodes(1, cpu_capacity=1, memory_capacity=2048, prefix="pivot")
        configuration = Configuration(nodes=nodes)
        configuration.add_vm(VirtualMachine("vm1", memory=2048, cpu_demand=0))
        configuration.add_vm(VirtualMachine("vm2", memory=2048, cpu_demand=0))
        configuration.set_running("vm1", "node-0")
        configuration.set_running("vm2", "node-1")
        target = configuration.copy()
        target.set_running("vm1", "node-1")
        target.set_running("vm2", "node-0")

        plan = build_plan(configuration, target)
        plan.check_reaches(target)
        check_golden("figure8", plan_to_dict(plan))

    def test_figure9_two_pool_plan(self):
        """Suspend then resume/run split over two pools."""
        nodes = make_working_nodes(2, cpu_capacity=1, memory_capacity=2048)
        configuration = Configuration(nodes=nodes)
        configuration.add_vm(VirtualMachine("vm3", memory=1024, cpu_demand=1))
        configuration.add_vm(VirtualMachine("vm5", memory=1024, cpu_demand=1))
        configuration.add_vm(VirtualMachine("vm6", memory=512, cpu_demand=1))
        configuration.set_running("vm3", "node-0")
        configuration.set_sleeping("vm5", "node-0")
        target = configuration.copy()
        target.set_sleeping("vm3")
        target.set_running("vm5", "node-0")
        target.set_running("vm6", "node-1")

        plan = build_plan(configuration, target)
        plan.check_reaches(target)
        check_golden("figure9", plan_to_dict(plan))


class TestMiniCampaignGolden:
    """A shrunk Section 5.2 campaign, locked switch by switch."""

    def test_mini_campaign_metrics(self):
        workloads = [
            make_nasgrid_vjob(
                f"vjob{i}",
                NASGridSpec(
                    benchmark=[Benchmark.HC, Benchmark.VP, Benchmark.MB, Benchmark.ED][i % 4],
                    problem_class=ProblemClass.W,
                    vm_count=4,
                ),
                memory_mb=512,
                priority=i,
            )
            for i in range(4)
        ]
        nodes = make_working_nodes(4, cpu_capacity=2, memory_capacity=3584)
        result = Scenario(
            nodes=nodes,
            workloads=workloads,
            policy="consolidation",
            optimizer_timeout=OPTIMIZER_TIMEOUT_S,
        ).run()

        actual = {
            "policy": result.policy,
            "makespan": round(result.makespan, 6),
            "completion_times": {
                name: round(time, 6)
                for name, time in sorted(result.completion_times.items())
            },
            "switches": [
                {
                    "time": round(s.time, 6),
                    "cost": s.cost,
                    "duration": round(s.duration, 6),
                    "migrations": s.migrations,
                    "runs": s.runs,
                    "stops": s.stops,
                    "suspends": s.suspends,
                    "resumes": s.resumes,
                    "local_resumes": s.local_resumes,
                    "used_fallback": s.used_fallback,
                }
                for s in result.switches
            ],
        }
        check_golden("mini_campaign", actual)
