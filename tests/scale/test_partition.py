"""Unit tests of the interference partitioner (``repro.scale.partition``)."""

from __future__ import annotations

import pytest

from repro.constraints import Ban, Fence, Gather, Lonely, MaxOnline, Spread
from repro.model.configuration import Configuration
from repro.model.node import make_working_nodes
from repro.model.vm import VMState
from repro.scale import partition, placed_vms, vm_domains
from repro.testing import make_vm


def _fleet(count=6, cpu=2, memory=4096):
    return make_working_nodes(count, cpu_capacity=cpu, memory_capacity=memory)


def _configuration(node_count=6, vm_count=6, memory=1024):
    configuration = Configuration(nodes=_fleet(node_count))
    for index in range(vm_count):
        configuration.add_vm(make_vm(f"vm{index}", memory=memory, cpu=1))
        configuration.set_running(f"vm{index}", f"node-{index % node_count}")
    return configuration


def _states(configuration):
    return {name: VMState.RUNNING for name in configuration.vm_names}


FENCE_A = ["node-0", "node-1", "node-2"]
FENCE_B = ["node-3", "node-4", "node-5"]


class TestInterferencePartition:
    def test_two_fences_two_zones(self):
        configuration = _configuration()
        constraints = [
            Fence(["vm0", "vm1", "vm2"], FENCE_A),
            Fence(["vm3", "vm4", "vm5"], FENCE_B),
        ]
        result = partition(configuration, _states(configuration), constraints)
        assert result.method == "interference"
        assert result.is_win
        assert [zone.nodes for zone in result.zones] == [
            tuple(FENCE_A),
            tuple(FENCE_B),
        ]
        assert [zone.vms for zone in result.zones] == [
            ("vm0", "vm1", "vm2"),
            ("vm3", "vm4", "vm5"),
        ]

    def test_zone_node_sets_are_disjoint_and_domains_confined(self):
        configuration = _configuration()
        constraints = [
            Fence(["vm0", "vm1"], FENCE_A),
            Fence(["vm3", "vm4"], FENCE_B),
        ]
        states = _states(configuration)
        result = partition(configuration, states, constraints)
        seen = set()
        for zone in result.zones:
            assert not (seen & set(zone.nodes))
            seen.update(zone.nodes)
        # every placed VM appears in exactly one zone
        all_vms = [vm for zone in result.zones for vm in zone.vms]
        assert sorted(all_vms) == sorted(placed_vms(states))

    def test_relational_constraint_welds_fenced_groups(self):
        configuration = _configuration()
        constraints = [
            Fence(["vm0", "vm1"], FENCE_A),
            Fence(["vm3", "vm4"], FENCE_B),
            # vm0 and vm3 must be kept apart -> their fences interfere.
            Spread(["vm0", "vm3"]),
        ]
        result = partition(configuration, _states(configuration), constraints)
        assert result.method == "monolithic" or len(result.zones) == 1

    def test_relational_with_unrestricted_member_is_monolithic(self):
        configuration = _configuration()
        constraints = [Spread(["vm0", "vm1"])]
        result = partition(configuration, _states(configuration), constraints)
        assert not result.is_win
        assert "unrestricted" in result.reason

    def test_gather_inside_one_fence_keeps_two_zones(self):
        configuration = _configuration()
        constraints = [
            Fence(["vm0", "vm1", "vm2"], FENCE_A),
            Fence(["vm3", "vm4", "vm5"], FENCE_B),
            Gather(["vm0", "vm1"]),
        ]
        result = partition(configuration, _states(configuration), constraints)
        assert result.method == "interference"
        assert len(result.zones) == 2
        # the Gather lands in the zone of its members only
        labels = [
            [type(c).__name__ for c in zone.constraints]
            for zone in result.zones
        ]
        assert "Gather" in labels[0]
        assert "Gather" not in labels[1]

    def test_maxonline_welds_its_node_set(self):
        configuration = _configuration()
        constraints = [
            Fence(["vm0", "vm1", "vm2"], FENCE_A),
            Fence(["vm3", "vm4", "vm5"], FENCE_B),
            MaxOnline(["node-0", "node-3"], maximum=1),
        ]
        result = partition(configuration, _states(configuration), constraints)
        # node-0 and node-3 belong to different fences -> everything welds
        assert not result.is_win

    def test_lonely_couples_from_one_member(self):
        configuration = _configuration()
        constraints = [Lonely(["vm0"])]
        result = partition(configuration, _states(configuration), constraints)
        assert not result.is_win
        assert "unrestricted" in result.reason

    def test_free_vms_join_residual_pool(self):
        configuration = _configuration(node_count=6, vm_count=4)
        constraints = [Fence(["vm0", "vm1"], ["node-0", "node-1"])]
        # vm2/vm3 run on node-2/node-3 (outside the fence): they join the
        # residual zone of the four untouched nodes.
        result = partition(configuration, _states(configuration), constraints)
        assert result.method == "interference"
        assert len(result.zones) == 2
        assert set(result.zones[1].nodes) == {
            "node-2",
            "node-3",
            "node-4",
            "node-5",
        }
        assert result.zones[1].vms == ("vm2", "vm3")

    def test_empty_domain_reports_monolithic(self):
        configuration = _configuration()
        constraints = [
            Fence(["vm0"], FENCE_A),
            Ban(["vm0"], FENCE_A),
        ]
        result = partition(configuration, _states(configuration), constraints)
        assert not result.is_win
        assert "empty placement domain" in result.reason

    def test_loose_ban_does_not_weld_the_fleet(self):
        configuration = _configuration()
        constraints = [
            Fence(["vm0", "vm1", "vm2"], FENCE_A),
            Fence(["vm3", "vm4", "vm5"], FENCE_B),
            # a Ban complement spans 5/6 nodes: loose, must not weld zones
            Ban(["vm3"], ["node-3"]),
        ]
        result = partition(configuration, _states(configuration), constraints)
        assert result.method == "interference"
        assert len(result.zones) == 2

    def test_all_tight_partition_is_exact(self):
        configuration = _configuration()
        constraints = [
            Fence(["vm0", "vm1", "vm2"], FENCE_A),
            Fence(["vm3", "vm4", "vm5"], FENCE_B),
        ]
        result = partition(configuration, _states(configuration), constraints)
        assert result.method == "interference"
        assert result.exact

    def test_heuristically_anchored_loose_vms_break_exactness(self):
        # vm3..vm5 are unconstrained: they anchor to the residual zone by
        # current host, which restricts their (full) domain — the partition
        # is valid but must not claim exactness.
        configuration = _configuration()
        constraints = [Fence(["vm0", "vm1", "vm2"], FENCE_A)]
        result = partition(configuration, _states(configuration), constraints)
        assert result.method == "interference"
        assert len(result.zones) == 2
        assert not result.exact


class TestShardingFallback:
    def test_unconstrained_fleet_shards_by_current_host(self):
        configuration = _configuration()
        result = partition(configuration, _states(configuration), (), shards=3)
        assert result.method == "sharded"
        assert len(result.zones) == 3
        for zone in result.zones:
            for vm in zone.vms:
                assert configuration.location_of(vm) in zone.nodes

    def test_sharding_scopes_loose_constraints_into_zones(self):
        # A Ban of one node is loose (its allowed domain spans 5/6 nodes),
        # so it never welds zones — but it still restricts placement, and
        # the shards must carry it so the zone sub-models enforce it.
        configuration = _configuration()
        ban = Ban(["vm2"], ["node-1"])
        result = partition(
            configuration, _states(configuration), [ban], shards=2
        )
        assert result.method == "sharded"
        owner = next(zone for zone in result.zones if "vm2" in zone.vms)
        assert ban in owner.constraints

    def test_sharding_anchors_outside_a_banned_current_host(self):
        # vm0 currently runs on node-0 and node-0 is banned for it: the
        # anchor is outside the domain, so the VM must land in a shard its
        # domain intersects (every shard here) and carry the Ban along.
        configuration = _configuration()
        ban = Ban(["vm0"], ["node-0"])
        result = partition(
            configuration, _states(configuration), [ban], shards=2
        )
        assert result.method == "sharded"
        owner = next(zone for zone in result.zones if "vm0" in zone.vms)
        assert ban in owner.constraints
        domain = {n for n in configuration.node_names if n != "node-0"}
        assert domain & set(owner.nodes)

    def test_sharded_partition_is_never_exact(self):
        configuration = _configuration()
        result = partition(configuration, _states(configuration), (), shards=2)
        assert result.method == "sharded"
        assert not result.exact

    def test_sharding_disabled_is_monolithic(self):
        configuration = _configuration()
        result = partition(configuration, _states(configuration), ())
        # default shards=None -> no sharding
        assert result.method == "monolithic"

    def test_single_vm_is_monolithic(self):
        configuration = _configuration(vm_count=1)
        result = partition(
            configuration, _states(configuration), (), shards=4
        )
        assert not result.is_win


class TestHelpers:
    def test_placed_vms_filters_non_running_targets(self):
        states = {
            "a": VMState.RUNNING,
            "b": VMState.SLEEPING,
            "c": VMState.TERMINATED,
            "d": VMState.RUNNING,
        }
        assert placed_vms(states) == ["a", "d"]

    def test_vm_domains_intersects_constraints(self):
        configuration = _configuration()
        domains = vm_domains(
            configuration,
            ["vm0", "vm1"],
            [
                Fence(["vm0"], FENCE_A),
                Ban(["vm0"], ["node-0"]),
            ],
        )
        assert domains["vm0"] == {"node-1", "node-2"}
        assert domains["vm1"] is None
