"""Unit tests of the campaign runner (``repro.scale.campaign``)."""

from __future__ import annotations

import json

import pytest

from repro.api import Scenario
from repro.model import make_working_nodes
from repro.scale import (
    CampaignPoint,
    CampaignResult,
    CampaignSpec,
    CampaignStore,
    run_campaign,
    summarize_run,
)
from repro.testing import make_workload


def _make_scenario(point: CampaignPoint) -> Scenario:
    return Scenario(
        nodes=make_working_nodes(
            point.fleet, cpu_capacity=2, memory_capacity=4096
        ),
        workloads=[
            make_workload(f"job{i}", vm_count=2, duration=120.0)
            for i in range(2)
        ],
        policy=point.policy,
        optimizer_timeout=1.0,
        max_time=2 * 3600.0,
    )


def _fragile_process_factory(point: CampaignPoint) -> Scenario:
    """Module-level (hence picklable) factory that fails one grid point."""
    if point.policy == "ffd":
        raise RuntimeError("boom")
    return _make_scenario(point)


def _spec(**overrides) -> CampaignSpec:
    values = dict(
        scenario_factory=_make_scenario,
        policies=("consolidation", "ffd"),
        fleet_sizes=(3,),
        seeds=(0,),
    )
    values.update(overrides)
    return CampaignSpec(**values)


class TestGrid:
    def test_points_cover_the_grid_in_order(self):
        spec = _spec(fleet_sizes=(3, 4), seeds=(0, 1))
        points = spec.points()
        assert len(points) == 2 * 2 * 1 * 2
        assert points[0] == CampaignPoint("consolidation", 3, "none", 0)
        assert points[-1] == CampaignPoint("ffd", 4, "none", 1)

    def test_point_key_is_stable(self):
        point = CampaignPoint("ffd", 8, "crash", 3)
        assert point.key == "ffd|8|crash|3"


class TestRunCampaign:
    def test_serial_campaign_produces_one_record_per_point(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        campaign = run_campaign(_spec(), store_path=store, executor="serial")
        assert len(campaign.records) == 2
        assert campaign.resumed == 0
        policies = [record["policy"] for record in campaign.records]
        assert policies == ["consolidation", "ffd"]
        assert all(record["makespan"] > 0 for record in campaign.records)
        # the store holds exactly the same records
        lines = store.read_text().splitlines()
        assert len(lines) == 2
        assert {json.loads(l)["key"] for l in lines} == {
            r["key"] for r in campaign.records
        }

    def test_resume_skips_completed_points(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        first = run_campaign(_spec(), store_path=store, executor="serial")
        second = run_campaign(_spec(), store_path=store, executor="serial")
        assert second.resumed == 2
        assert [r["key"] for r in second.records] == [
            r["key"] for r in first.records
        ]
        # nothing was re-run: the store did not grow
        assert len(store.read_text().splitlines()) == 2

    def test_completed_points_survive_a_mid_campaign_failure(self, tmp_path):
        # resumability promise: everything finished before a failing point
        # is already on disk, so the retry only re-runs the remainder
        store = tmp_path / "campaign.jsonl"

        def fragile_factory(point):
            if point.policy == "ffd":
                raise RuntimeError("boom")
            return _make_scenario(point)

        spec = _spec(scenario_factory=fragile_factory)
        with pytest.raises(RuntimeError):
            run_campaign(spec, store_path=store, executor="serial")
        persisted = CampaignStore(store).load()
        assert list(persisted) == ["consolidation|3|none|0"]
        # the retry resumes past the persisted point
        retry = run_campaign(_spec(), store_path=store, executor="serial")
        assert retry.resumed == 1
        assert len(retry.records) == 2

    def test_process_campaign_preserves_finished_points_on_failure(
        self, tmp_path
    ):
        # the process path must drain every in-flight point into the store
        # before re-raising: otherwise a resume re-runs work that finished
        # in other workers while one point was failing
        store = tmp_path / "campaign.jsonl"
        spec = _spec(scenario_factory=_fragile_process_factory)
        with pytest.raises(RuntimeError):
            run_campaign(
                spec, store_path=store, executor="process", max_workers=2
            )
        persisted = CampaignStore(store).load()
        assert "consolidation|3|none|0" in persisted
        retry = run_campaign(_spec(), store_path=store, executor="serial")
        assert retry.resumed == 1
        assert len(retry.records) == 2

    def test_resume_false_truncates_the_store(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        run_campaign(_spec(), store_path=store, executor="serial")
        campaign = run_campaign(
            _spec(), store_path=store, executor="serial", resume=False
        )
        assert campaign.resumed == 0
        assert len(store.read_text().splitlines()) == 2

    def test_in_memory_campaign_needs_no_store(self):
        campaign = run_campaign(_spec(), executor="serial")
        assert len(campaign.records) == 2

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(_spec(), executor="threads")

    def test_process_campaign_matches_serial(self, tmp_path):
        serial = run_campaign(_spec(), executor="serial")
        process = run_campaign(_spec(), executor="process", max_workers=2)
        drop = {"runtime_seconds"}
        strip = lambda r: {k: v for k, v in r.items() if k not in drop}
        assert [strip(r) for r in process.records] == [
            strip(r) for r in serial.records
        ]


class TestStore:
    def test_malformed_lines_are_skipped(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        path.write_text(
            json.dumps({"key": "a|1|none|0", "makespan": 1.0})
            + "\n{truncated"
        )
        store = CampaignStore(path)
        records = store.load()
        assert list(records) == ["a|1|none|0"]

    def test_append_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "campaign.jsonl"
        CampaignStore(path).append({"key": "k"})
        assert path.exists()


class TestAggregation:
    def _records(self):
        base = dict(
            faults="none",
            switches=2,
            total_switch_cost=100,
            migrations=1,
            fallback_switches=0,
            faults_injected=0,
            mean_repair_latency=0.0,
            sla_violations=0,
            lost_vjobs=0,
            constraint_violations=0,
            planning_failures=0,
            runtime_seconds=1.0,
        )
        return [
            {**base, "key": "p|4|none|0", "policy": "p", "fleet": 4,
             "seed": 0, "makespan": 100.0},
            {**base, "key": "p|4|none|1", "policy": "p", "fleet": 4,
             "seed": 1, "makespan": 200.0},
            {**base, "key": "q|4|none|0", "policy": "q", "fleet": 4,
             "seed": 0, "makespan": 300.0},
        ]

    def test_aggregate_averages_over_seeds(self):
        result = CampaignResult(records=self._records())
        rows = result.aggregate()
        assert len(rows) == 2
        by_policy = {row["policy"]: row for row in rows}
        assert by_policy["p"]["runs"] == 2
        assert by_policy["p"]["mean_makespan"] == 150.0
        assert by_policy["q"]["mean_makespan"] == 300.0

    def test_table_renders_sorted_rows(self):
        table = CampaignResult(records=self._records()).table()
        assert "Campaign results" in table
        assert table.index("p ") < table.index("q ")


class TestSummarize:
    def test_summarize_run_flattens_the_result(self):
        point = CampaignPoint("consolidation", 3)
        result = _make_scenario(point).run()
        record = summarize_run(point, result, 1.234)
        assert record["key"] == point.key
        assert record["runtime_seconds"] == 1.234
        assert record["makespan"] == result.makespan
        assert record["switches"] == result.switch_count
        json.dumps(record)  # JSON-safe
