"""Unit tests of the parallel zone optimizer (``repro.scale.parallel``)."""

from __future__ import annotations

import pytest

from repro.constraints import Ban, Fence, Spread
from repro.constraints.checker import check_plan
from repro.core.optimizer import ContextSwitchOptimizer
from repro.model.configuration import Configuration
from repro.model.errors import SolverError
from repro.model.node import make_working_nodes
from repro.model.vm import VMState
from repro.scale import (
    ParallelOptimizer,
    Zone,
    build_zone_configuration,
    merge_statistics,
    partition,
    solve_zone,
)
from repro.scale.parallel import ZoneOutcome, ZoneTask
from repro.cp import SearchStatistics
from repro.testing import make_vm

FENCE_A = ("node-0", "node-1", "node-2")
FENCE_B = ("node-3", "node-4", "node-5")


def _configuration(node_count=6, vm_count=6, memory=1024, cpu=1):
    configuration = Configuration(
        nodes=make_working_nodes(node_count, cpu_capacity=2, memory_capacity=4096)
    )
    for index in range(vm_count):
        configuration.add_vm(make_vm(f"vm{index}", memory=memory, cpu=cpu))
        configuration.set_running(f"vm{index}", f"node-{index % node_count}")
    return configuration


def _states(configuration):
    return {name: VMState.RUNNING for name in configuration.vm_names}


def _fenced_constraints():
    return [
        Fence(["vm0", "vm1", "vm2"], FENCE_A),
        Fence(["vm3", "vm4", "vm5"], FENCE_B),
    ]


class TestParallelOptimizer:
    def test_partitioned_result_matches_monolithic_objective(self):
        configuration = _configuration()
        states = _states(configuration)
        constraints = _fenced_constraints()
        partitioned = ParallelOptimizer(
            timeout=5.0, zone_executor="serial"
        ).optimize(configuration, states, constraints=constraints)
        monolithic = ContextSwitchOptimizer(timeout=5.0).optimize(
            configuration, states, constraints=constraints
        )
        assert partitioned.partition_method == "interference"
        assert partitioned.statistics.proven_optimal
        assert monolithic.statistics.proven_optimal
        assert partitioned.movement_cost == monolithic.movement_cost
        assert partitioned.cost == monolithic.cost

    def test_merged_plan_is_checker_clean_and_reaches_target(self):
        configuration = _configuration()
        constraints = _fenced_constraints()
        result = ParallelOptimizer(
            timeout=5.0, zone_executor="serial"
        ).optimize(configuration, _states(configuration), constraints=constraints)
        assert check_plan(result.plan, constraints) == []
        result.plan.check_reaches(result.target)
        assert result.target.is_viable()

    def test_zone_reports_cover_every_zone(self):
        configuration = _configuration()
        result = ParallelOptimizer(
            timeout=5.0, zone_executor="serial"
        ).optimize(
            configuration,
            _states(configuration),
            constraints=_fenced_constraints(),
        )
        assert result.zone_count == 2
        assert [report.vm_count for report in result.zone_reports] == [3, 3]
        assert all(r.statistics.solutions >= 1 for r in result.zone_reports)

    def test_monolithic_fallback_when_no_partition(self):
        configuration = _configuration()
        result = ParallelOptimizer(
            timeout=5.0, zone_executor="serial", shards=None
        ).optimize(configuration, _states(configuration))
        assert result.partition_method == "monolithic"
        assert result.zone_reports == []
        assert result.partition_reason
        assert result.target.is_viable()

    def test_relational_spanning_zones_falls_back(self):
        configuration = _configuration()
        constraints = [*_fenced_constraints(), Spread(["vm0", "vm3"])]
        result = ParallelOptimizer(
            timeout=5.0, zone_executor="serial"
        ).optimize(configuration, _states(configuration), constraints=constraints)
        assert result.partition_method == "monolithic"
        # the monolithic solve still honours the whole catalog
        assert (
            result.target.location_of("vm0")
            != result.target.location_of("vm3")
        )

    def test_process_executor_agrees_with_serial(self):
        configuration = _configuration()
        constraints = _fenced_constraints()
        states = _states(configuration)
        with ParallelOptimizer(
            timeout=5.0, zone_executor="process", max_workers=2
        ) as optimizer:
            via_process = optimizer.optimize(
                configuration, states, constraints=constraints
            )
        via_serial = ParallelOptimizer(
            timeout=5.0, zone_executor="serial"
        ).optimize(configuration, states, constraints=constraints)
        assert via_process.cost == via_serial.cost
        assert via_process.target.same_assignment(via_serial.target)

    def test_unknown_zone_executor_rejected(self):
        with pytest.raises(SolverError):
            ParallelOptimizer(zone_executor="threads")

    def test_sharded_solve_composes(self):
        configuration = _configuration(node_count=4, vm_count=4)
        result = ParallelOptimizer(
            timeout=5.0, zone_executor="serial", shards=2
        ).optimize(configuration, _states(configuration))
        assert result.partition_method == "sharded"
        result.plan.check_reaches(result.target)
        assert result.target.is_viable()

    def test_sharded_solve_enforces_loose_ban(self):
        # vm0 currently runs on a node banned for it: the sharded engine
        # must move it off — the zone sub-model carries the scoped Ban, it
        # is not merely recorded as a violation by the planner.
        configuration = _configuration()
        ban = Ban(["vm0"], ["node-0"])
        result = ParallelOptimizer(
            timeout=5.0, zone_executor="serial", shards=2
        ).optimize(configuration, _states(configuration), constraints=[ban])
        assert result.target.location_of("vm0") != "node-0"
        assert check_plan(result.plan, [ban]) == []
        if result.partition_method == "sharded":
            # a heuristic restriction must never claim global optimality
            assert not result.statistics.proven_optimal

    def test_sharded_solve_never_claims_optimality(self):
        configuration = _configuration(node_count=4, vm_count=4)
        result = ParallelOptimizer(
            timeout=5.0, zone_executor="serial", shards=2
        ).optimize(configuration, _states(configuration))
        assert result.partition_method == "sharded"
        assert not result.statistics.proven_optimal

    def test_infeasible_zone_falls_back_to_monolithic(self):
        # vm0..vm3 fenced onto a single node that cannot host them all; the
        # zone solve fails, the global solve (without the zone restriction
        # heuristics) must also respect the fence and use the fallback path.
        configuration = _configuration(node_count=4, vm_count=4, cpu=2)
        constraints = [Fence(["vm0", "vm1"], ["node-0"])]
        result = ParallelOptimizer(
            timeout=5.0, zone_executor="serial"
        ).optimize(
            configuration,
            _states(configuration),
            fallback_target=configuration.copy(),
            constraints=(),
        )
        assert result.target.is_viable()


class TestZoneMachinery:
    def test_build_zone_configuration_keeps_in_zone_state(self):
        configuration = _configuration()
        zone = Zone(index=0, nodes=FENCE_A, vms=("vm0", "vm1", "vm2"))
        sub = build_zone_configuration(configuration, zone)
        assert set(sub.node_names) == set(FENCE_A)
        assert set(sub.vm_names) == {"vm0", "vm1", "vm2"}
        assert sub.location_of("vm0") == "node-0"

    def test_build_zone_configuration_degrades_outside_host_to_waiting(self):
        configuration = _configuration()
        # vm3 currently runs on node-3, outside this zone
        zone = Zone(index=0, nodes=FENCE_A, vms=("vm0", "vm3"))
        sub = build_zone_configuration(configuration, zone)
        assert sub.state_of("vm3") is VMState.WAITING

    def test_solve_zone_returns_assignment_inside_zone(self):
        configuration = _configuration()
        zone = Zone(index=0, nodes=FENCE_A, vms=("vm0", "vm1", "vm2"))
        outcome = solve_zone(
            ZoneTask(
                zone=zone,
                configuration=build_zone_configuration(configuration, zone),
                timeout=5.0,
            )
        )
        assert outcome.assignment is not None
        assert set(outcome.assignment) == {"vm0", "vm1", "vm2"}
        assert set(outcome.assignment.values()) <= set(FENCE_A)

    def test_merge_statistics_composes_conservatively(self):
        fast = ZoneOutcome(
            index=0,
            assignment={},
            statistics=SearchStatistics(
                nodes=10, backtracks=1, proven_optimal=True, elapsed=0.1
            ),
            elapsed=0.1,
        )
        slow = ZoneOutcome(
            index=1,
            assignment={},
            statistics=SearchStatistics(
                nodes=20, backtracks=4, proven_optimal=False, elapsed=0.5,
                timed_out=True,
            ),
            elapsed=0.5,
        )
        merged = merge_statistics([fast, slow])
        assert merged.nodes == 30
        assert merged.backtracks == 5
        assert not merged.proven_optimal
        assert merged.timed_out
        assert merged.elapsed == 0.5

    def test_merge_statistics_empty(self):
        merged = merge_statistics([])
        assert not merged.proven_optimal
        assert merged.elapsed == 0.0

    def test_merge_statistics_inexact_partition_clears_optimality(self):
        proven = ZoneOutcome(
            index=0,
            assignment={},
            statistics=SearchStatistics(proven_optimal=True, elapsed=0.1),
            elapsed=0.1,
        )
        # every zone proved its local optimum, but the decomposition was a
        # domain restriction (sharded / heuristic anchoring): the merged
        # result must not claim global optimality
        merged = merge_statistics([proven, proven], exact=False)
        assert not merged.proven_optimal
        # the default fails safe: no exactness vouched, no optimality claim
        assert not merge_statistics([proven, proven]).proven_optimal
        # an exact partition with every zone proved may claim the optimum
        assert merge_statistics([proven, proven], exact=True).proven_optimal

    def test_serial_zones_share_the_wall_clock_budget(self, monkeypatch):
        import time as time_module

        from repro.scale import parallel as parallel_module

        configuration = _configuration()
        constraints = _fenced_constraints()
        states = _states(configuration)
        decomposition = partition(configuration, states, constraints)
        assert len(decomposition.zones) == 2

        recorded = []

        def slow_zone(task):
            recorded.append(task.timeout)
            time_module.sleep(0.2)
            return ZoneOutcome(
                index=task.zone.index,
                assignment=None,
                statistics=SearchStatistics(),
                elapsed=0.2,
            )

        monkeypatch.setattr(parallel_module, "solve_zone", slow_zone)
        optimizer = ParallelOptimizer(timeout=0.3, zone_executor="serial")
        optimizer._solve_zones(configuration, decomposition)
        assert len(recorded) == 2
        # the first zone gets (about) the whole budget, the second only
        # what the first left over — not another full timeout
        assert recorded[0] <= 0.3 + 1e-6
        assert recorded[1] < 0.15

    def test_zone_failure_fallback_gets_the_leftover_budget(self, monkeypatch):
        import time as time_module

        from repro.scale import parallel as parallel_module

        configuration = _configuration()
        states = _states(configuration)

        def failing_zone(task):
            time_module.sleep(0.15)
            return ZoneOutcome(
                index=task.zone.index,
                assignment=None,
                statistics=SearchStatistics(),
                elapsed=0.15,
            )

        monkeypatch.setattr(parallel_module, "solve_zone", failing_zone)
        optimizer = ParallelOptimizer(timeout=0.5, zone_executor="serial")
        seen = []
        original = optimizer.monolithic.optimize

        def spy(*args, **kwargs):
            seen.append(optimizer.monolithic.timeout)
            return original(*args, **kwargs)

        monkeypatch.setattr(optimizer.monolithic, "optimize", spy)
        result = optimizer.optimize(
            configuration, states, constraints=_fenced_constraints()
        )
        assert result.partition_method == "monolithic"
        # the fallback ran on what the failed zones left over, not on a
        # second full budget; the optimizer's timeout is restored after
        assert seen and seen[0] < 0.5
        assert optimizer.monolithic.timeout == 0.5

    def test_queued_waves_carve_the_timeout(self):
        configuration = _configuration()
        decomposition = partition(
            configuration, _states(configuration), _fenced_constraints()
        )
        optimizer = ParallelOptimizer(timeout=8.0, max_workers=1)
        # two zones on one worker queue in two waves: each gets half the
        # global wall-clock budget, keeping the round inside the budget
        tasks = optimizer._zone_tasks(configuration, decomposition, waves=2)
        assert [task.timeout for task in tasks] == [4.0, 4.0]
        overlapped = optimizer._zone_tasks(configuration, decomposition)
        assert [task.timeout for task in overlapped] == [8.0, 8.0]


class _FakePool:
    def __init__(self):
        self.shut_down = False

    def shutdown(self):
        self.shut_down = True


class TestPartitionedEngineWiring:
    def test_cluster_context_switch_accepts_partitioned_engine(self):
        from repro.core.context_switch import ClusterContextSwitch
        from repro.scale.parallel import ParallelOptimizer as PO

        switch = ClusterContextSwitch(engine="partitioned")
        assert isinstance(switch.optimizer, PO)
        assert switch.engine == "partitioned"

    def test_cluster_context_switch_close_shuts_the_pool(self):
        from repro.core.context_switch import ClusterContextSwitch

        pool = _FakePool()
        with ClusterContextSwitch(engine="partitioned") as switch:
            switch.optimizer._pool = pool
        assert pool.shut_down
        assert switch.optimizer._pool is None
        switch.close()  # idempotent

    def test_cluster_context_switch_close_is_a_noop_for_monolithic(self):
        from repro.core.context_switch import ClusterContextSwitch

        switch = ClusterContextSwitch(engine="event")
        switch.close()

    def test_control_loop_close_releases_the_partitioned_pool(self):
        from repro.api import Scenario
        from repro.testing import make_workload

        loop = Scenario(
            nodes=make_working_nodes(4, cpu_capacity=2, memory_capacity=4096),
            workloads=[make_workload("job")],
            engine="partitioned",
        ).build()
        pool = _FakePool()
        loop.switcher.optimizer._pool = pool
        loop.close()
        assert pool.shut_down
        assert loop.switcher.optimizer._pool is None

    def test_control_loop_run_closes_the_switcher(self, monkeypatch):
        from repro.api import Scenario
        from repro.testing import make_workload

        loop = Scenario(
            nodes=make_working_nodes(4, cpu_capacity=2, memory_capacity=4096),
            workloads=[make_workload("job")],
        ).build()
        closed = []
        monkeypatch.setattr(loop, "close", lambda: closed.append(True))
        loop.run()
        assert closed

    def test_scenario_engine_knob_reaches_the_switcher(self):
        from repro.api import Scenario
        from repro.scale.parallel import ParallelOptimizer as PO
        from repro.testing import make_workload

        scenario = Scenario(
            nodes=make_working_nodes(4, cpu_capacity=2, memory_capacity=4096),
            workloads=[make_workload("job")],
            engine="partitioned",
        )
        loop = scenario.build()
        assert isinstance(loop.switcher.optimizer, PO)

    def test_experiment_builder_engine_method(self):
        from repro.api import ExperimentBuilder

        scenario = (
            ExperimentBuilder()
            .nodes(make_working_nodes(2, cpu_capacity=2, memory_capacity=4096))
            .workloads([])
            .engine("partitioned")
            .max_workers(2)
            .build()
        )
        assert scenario.engine == "partitioned"
        assert scenario.max_workers == 2
