"""Unit tests of the parallel zone optimizer (``repro.scale.parallel``)."""

from __future__ import annotations

import pytest

from repro.constraints import Fence, Spread
from repro.constraints.checker import check_plan
from repro.core.optimizer import ContextSwitchOptimizer
from repro.model.configuration import Configuration
from repro.model.errors import SolverError
from repro.model.node import make_working_nodes
from repro.model.vm import VMState
from repro.scale import (
    ParallelOptimizer,
    Zone,
    build_zone_configuration,
    merge_statistics,
    partition,
    solve_zone,
)
from repro.scale.parallel import ZoneOutcome, ZoneTask
from repro.cp import SearchStatistics
from repro.testing import make_vm

FENCE_A = ("node-0", "node-1", "node-2")
FENCE_B = ("node-3", "node-4", "node-5")


def _configuration(node_count=6, vm_count=6, memory=1024, cpu=1):
    configuration = Configuration(
        nodes=make_working_nodes(node_count, cpu_capacity=2, memory_capacity=4096)
    )
    for index in range(vm_count):
        configuration.add_vm(make_vm(f"vm{index}", memory=memory, cpu=cpu))
        configuration.set_running(f"vm{index}", f"node-{index % node_count}")
    return configuration


def _states(configuration):
    return {name: VMState.RUNNING for name in configuration.vm_names}


def _fenced_constraints():
    return [
        Fence(["vm0", "vm1", "vm2"], FENCE_A),
        Fence(["vm3", "vm4", "vm5"], FENCE_B),
    ]


class TestParallelOptimizer:
    def test_partitioned_result_matches_monolithic_objective(self):
        configuration = _configuration()
        states = _states(configuration)
        constraints = _fenced_constraints()
        partitioned = ParallelOptimizer(
            timeout=5.0, zone_executor="serial"
        ).optimize(configuration, states, constraints=constraints)
        monolithic = ContextSwitchOptimizer(timeout=5.0).optimize(
            configuration, states, constraints=constraints
        )
        assert partitioned.partition_method == "interference"
        assert partitioned.statistics.proven_optimal
        assert monolithic.statistics.proven_optimal
        assert partitioned.movement_cost == monolithic.movement_cost
        assert partitioned.cost == monolithic.cost

    def test_merged_plan_is_checker_clean_and_reaches_target(self):
        configuration = _configuration()
        constraints = _fenced_constraints()
        result = ParallelOptimizer(
            timeout=5.0, zone_executor="serial"
        ).optimize(configuration, _states(configuration), constraints=constraints)
        assert check_plan(result.plan, constraints) == []
        result.plan.check_reaches(result.target)
        assert result.target.is_viable()

    def test_zone_reports_cover_every_zone(self):
        configuration = _configuration()
        result = ParallelOptimizer(
            timeout=5.0, zone_executor="serial"
        ).optimize(
            configuration,
            _states(configuration),
            constraints=_fenced_constraints(),
        )
        assert result.zone_count == 2
        assert [report.vm_count for report in result.zone_reports] == [3, 3]
        assert all(r.statistics.solutions >= 1 for r in result.zone_reports)

    def test_monolithic_fallback_when_no_partition(self):
        configuration = _configuration()
        result = ParallelOptimizer(
            timeout=5.0, zone_executor="serial", shards=None
        ).optimize(configuration, _states(configuration))
        assert result.partition_method == "monolithic"
        assert result.zone_reports == []
        assert result.partition_reason
        assert result.target.is_viable()

    def test_relational_spanning_zones_falls_back(self):
        configuration = _configuration()
        constraints = [*_fenced_constraints(), Spread(["vm0", "vm3"])]
        result = ParallelOptimizer(
            timeout=5.0, zone_executor="serial"
        ).optimize(configuration, _states(configuration), constraints=constraints)
        assert result.partition_method == "monolithic"
        # the monolithic solve still honours the whole catalog
        assert (
            result.target.location_of("vm0")
            != result.target.location_of("vm3")
        )

    def test_process_executor_agrees_with_serial(self):
        configuration = _configuration()
        constraints = _fenced_constraints()
        states = _states(configuration)
        with ParallelOptimizer(
            timeout=5.0, zone_executor="process", max_workers=2
        ) as optimizer:
            via_process = optimizer.optimize(
                configuration, states, constraints=constraints
            )
        via_serial = ParallelOptimizer(
            timeout=5.0, zone_executor="serial"
        ).optimize(configuration, states, constraints=constraints)
        assert via_process.cost == via_serial.cost
        assert via_process.target.same_assignment(via_serial.target)

    def test_unknown_zone_executor_rejected(self):
        with pytest.raises(SolverError):
            ParallelOptimizer(zone_executor="threads")

    def test_sharded_solve_composes(self):
        configuration = _configuration(node_count=4, vm_count=4)
        result = ParallelOptimizer(
            timeout=5.0, zone_executor="serial", shards=2
        ).optimize(configuration, _states(configuration))
        assert result.partition_method == "sharded"
        result.plan.check_reaches(result.target)
        assert result.target.is_viable()

    def test_infeasible_zone_falls_back_to_monolithic(self):
        # vm0..vm3 fenced onto a single node that cannot host them all; the
        # zone solve fails, the global solve (without the zone restriction
        # heuristics) must also respect the fence and use the fallback path.
        configuration = _configuration(node_count=4, vm_count=4, cpu=2)
        constraints = [Fence(["vm0", "vm1"], ["node-0"])]
        result = ParallelOptimizer(
            timeout=5.0, zone_executor="serial"
        ).optimize(
            configuration,
            _states(configuration),
            fallback_target=configuration.copy(),
            constraints=(),
        )
        assert result.target.is_viable()


class TestZoneMachinery:
    def test_build_zone_configuration_keeps_in_zone_state(self):
        configuration = _configuration()
        zone = Zone(index=0, nodes=FENCE_A, vms=("vm0", "vm1", "vm2"))
        sub = build_zone_configuration(configuration, zone)
        assert set(sub.node_names) == set(FENCE_A)
        assert set(sub.vm_names) == {"vm0", "vm1", "vm2"}
        assert sub.location_of("vm0") == "node-0"

    def test_build_zone_configuration_degrades_outside_host_to_waiting(self):
        configuration = _configuration()
        # vm3 currently runs on node-3, outside this zone
        zone = Zone(index=0, nodes=FENCE_A, vms=("vm0", "vm3"))
        sub = build_zone_configuration(configuration, zone)
        assert sub.state_of("vm3") is VMState.WAITING

    def test_solve_zone_returns_assignment_inside_zone(self):
        configuration = _configuration()
        zone = Zone(index=0, nodes=FENCE_A, vms=("vm0", "vm1", "vm2"))
        outcome = solve_zone(
            ZoneTask(
                zone=zone,
                configuration=build_zone_configuration(configuration, zone),
                timeout=5.0,
            )
        )
        assert outcome.assignment is not None
        assert set(outcome.assignment) == {"vm0", "vm1", "vm2"}
        assert set(outcome.assignment.values()) <= set(FENCE_A)

    def test_merge_statistics_composes_conservatively(self):
        fast = ZoneOutcome(
            index=0,
            assignment={},
            statistics=SearchStatistics(
                nodes=10, backtracks=1, proven_optimal=True, elapsed=0.1
            ),
            elapsed=0.1,
        )
        slow = ZoneOutcome(
            index=1,
            assignment={},
            statistics=SearchStatistics(
                nodes=20, backtracks=4, proven_optimal=False, elapsed=0.5,
                timed_out=True,
            ),
            elapsed=0.5,
        )
        merged = merge_statistics([fast, slow])
        assert merged.nodes == 30
        assert merged.backtracks == 5
        assert not merged.proven_optimal
        assert merged.timed_out
        assert merged.elapsed == 0.5

    def test_merge_statistics_empty(self):
        merged = merge_statistics([])
        assert not merged.proven_optimal
        assert merged.elapsed == 0.0


class TestPartitionedEngineWiring:
    def test_cluster_context_switch_accepts_partitioned_engine(self):
        from repro.core.context_switch import ClusterContextSwitch
        from repro.scale.parallel import ParallelOptimizer as PO

        switch = ClusterContextSwitch(engine="partitioned")
        assert isinstance(switch.optimizer, PO)
        assert switch.engine == "partitioned"

    def test_scenario_engine_knob_reaches_the_switcher(self):
        from repro.api import Scenario
        from repro.scale.parallel import ParallelOptimizer as PO
        from repro.testing import make_workload

        scenario = Scenario(
            nodes=make_working_nodes(4, cpu_capacity=2, memory_capacity=4096),
            workloads=[make_workload("job")],
            engine="partitioned",
        )
        loop = scenario.build()
        assert isinstance(loop.switcher.optimizer, PO)

    def test_experiment_builder_engine_method(self):
        from repro.api import ExperimentBuilder

        scenario = (
            ExperimentBuilder()
            .nodes(make_working_nodes(2, cpu_capacity=2, memory_capacity=4096))
            .workloads([])
            .engine("partitioned")
            .max_workers(2)
            .build()
        )
        assert scenario.engine == "partitioned"
        assert scenario.max_workers == 2
