"""Tests of the plain-text report helpers."""

from repro.analysis.report import (
    banner,
    format_fraction,
    format_seconds,
    format_table,
    series,
)


class TestFormatTable:
    def test_alignment_and_headers(self):
        table = format_table(
            ["name", "value"], [["alpha", 1], ["b", 12345]]
        )
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "value" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4
        # columns line up
        assert lines[2].index("1") == lines[3].index("1")

    def test_empty_rows(self):
        table = format_table(["a"], [])
        assert table.splitlines()[0] == "a"

    def test_non_string_cells_are_rendered(self):
        table = format_table(["x"], [[3.5], [None]])
        assert "3.5" in table and "None" in table


class TestFormatters:
    def test_format_seconds(self):
        assert format_seconds(0.0) == "00:00.0"
        assert format_seconds(75.5) == "01:15.5"
        assert format_seconds(315.0) == "05:15.0"

    def test_format_fraction(self):
        assert format_fraction(0.4) == "40.0%"
        assert format_fraction(0.951) == "95.1%"

    def test_banner_and_series(self):
        text = series("Figure 10", ["col"], [[1]])
        assert "Figure 10" in text
        assert "col" in text
        assert banner("x").count("=") >= 40
