"""Tests of the analysis metrics."""

import pytest

from repro.analysis.metrics import (
    CostComparison,
    average_cost_reduction,
    average_cpu_utilization,
    average_memory_utilization_gb,
    cost_duration_pairs,
    group_by_vm_count,
    makespan_reduction,
    mean_costs_by_vm_count,
    resample,
    switch_statistics,
)
from repro.entropy.loop import ContextSwitchRecord, UtilizationSample


def record(cost=1000, duration=60.0, migrations=1, suspends=0, resumes=0, local=0,
           runs=0, stops=0, time=0.0):
    return ContextSwitchRecord(
        time=time,
        cost=cost,
        duration=duration,
        migrations=migrations,
        runs=runs,
        stops=stops,
        suspends=suspends,
        resumes=resumes,
        local_resumes=local,
    )


def sample(time=0.0, demand=10, used=8, capacity=20, memory=4096):
    return UtilizationSample(
        time=time,
        cpu_demand_units=demand,
        cpu_used_units=used,
        cpu_capacity_units=capacity,
        memory_used_mb=memory,
    )


class TestCostComparisons:
    def test_reduction(self):
        comparison = CostComparison(vm_count=54, ffd_cost=1000, entropy_cost=100)
        assert comparison.reduction == pytest.approx(0.9)

    def test_zero_ffd_cost_gives_zero_reduction(self):
        assert CostComparison(54, 0, 0).reduction == 0.0

    def test_average_reduction_ignores_zero_baselines(self):
        comparisons = [
            CostComparison(54, 1000, 100),
            CostComparison(54, 0, 0),
            CostComparison(108, 2000, 1000),
        ]
        assert average_cost_reduction(comparisons) == pytest.approx((0.9 + 0.5) / 2)

    def test_average_reduction_of_empty_list(self):
        assert average_cost_reduction([]) == 0.0

    def test_grouping_and_means(self):
        comparisons = [
            CostComparison(54, 100, 10),
            CostComparison(54, 200, 30),
            CostComparison(108, 400, 40),
        ]
        grouped = group_by_vm_count(comparisons)
        assert set(grouped) == {54, 108}
        rows = mean_costs_by_vm_count(comparisons)
        assert rows[0] == (54, 150, 20)
        assert rows[1] == (108, 400, 40)


class TestSwitchStatistics:
    def test_aggregates(self):
        switches = [
            record(cost=0, duration=10.0, migrations=0, runs=2),
            record(cost=4608, duration=315.0, migrations=9, suspends=9, resumes=9, local=7),
        ]
        stats = switch_statistics(switches)
        assert stats.count == 2
        assert stats.average_duration == pytest.approx(162.5)
        assert stats.max_duration == 315.0
        assert stats.max_cost == 4608
        assert stats.total_migrations == 9
        assert stats.local_resume_fraction == pytest.approx(7 / 9)

    def test_empty_switches(self):
        stats = switch_statistics([])
        assert stats.count == 0
        assert stats.average_duration == 0.0

    def test_noop_switches_are_ignored(self):
        noop = record(cost=0, duration=0.0, migrations=0)
        stats = switch_statistics([noop])
        assert stats.count == 0

    def test_cost_duration_pairs(self):
        switches = [record(cost=1024, duration=19.0), record(cost=0, duration=0.0, migrations=0)]
        assert cost_duration_pairs(switches) == [(1024, 19.0)]


class TestUtilization:
    def test_average_cpu_utilization(self):
        samples = [sample(time=0.0, used=10), sample(time=60.0, used=20)]
        assert average_cpu_utilization(samples) == pytest.approx(0.75)
        assert average_cpu_utilization(samples, until=30.0) == pytest.approx(0.5)
        assert average_cpu_utilization([]) == 0.0

    def test_cpu_demand_fraction_can_exceed_one(self):
        overloaded = sample(demand=29, capacity=22)
        assert overloaded.cpu_demand_fraction > 1.0

    def test_average_memory_utilization(self):
        samples = [sample(memory=2048), sample(time=60.0, memory=4096)]
        assert average_memory_utilization_gb(samples) == pytest.approx(3.0)

    def test_makespan_reduction_matches_paper_headline(self):
        assert makespan_reduction(250.0, 150.0) == pytest.approx(0.4)
        assert makespan_reduction(0.0, 10.0) == 0.0

    def test_resample_produces_regular_grid(self):
        samples = [sample(time=0.0, used=5), sample(time=95.0, used=15)]
        grid = resample(samples, step=50.0, horizon=150.0)
        assert [s.time for s in grid] == [0.0, 50.0, 100.0, 150.0]
        assert [s.cpu_used_units for s in grid] == [5, 5, 15, 15]

    def test_resample_empty(self):
        assert resample([], step=10.0) == []
