"""Tests of the simulated cluster and the plan executor."""

import pytest

from repro.core.actions import ActionKind, Migrate, Resume, Run, Stop, Suspend
from repro.core.planner import build_plan
from repro.model.errors import ExecutionError
from repro.model.node import make_working_nodes
from repro.model.vm import VMState
from repro.sim.cluster import SimulatedCluster
from repro.sim.executor import PlanExecutor, estimate_duration
from repro.sim.hypervisor import DEFAULT_HYPERVISOR

from repro.testing import make_vm


@pytest.fixture
def cluster():
    cluster = SimulatedCluster(
        nodes=make_working_nodes(3, cpu_capacity=2, memory_capacity=4096)
    )
    cluster.add_vm(make_vm("a", memory=1024, cpu=1))
    cluster.add_vm(make_vm("b", memory=512, cpu=1))
    cluster.configuration.set_running("a", "node-0")
    cluster.configuration.set_running("b", "node-1")
    return cluster


class TestSimulatedCluster:
    def test_apply_suspend_stores_image(self, cluster):
        event = cluster.apply_action(Suspend(vm="a", node="node-0"), time=10.0, duration=30.0)
        assert cluster.configuration.state_of("a") is VMState.SLEEPING
        assert cluster.images.location_of("a") == "node-0"
        assert event.kind == "suspend" and event.time == 10.0

    def test_apply_resume_discards_image(self, cluster):
        cluster.apply_action(Suspend(vm="a", node="node-0"), time=0.0, duration=1.0)
        cluster.apply_action(
            Resume(vm="a", image_node="node-0", destination_node="node-0"),
            time=5.0,
            duration=1.0,
        )
        assert "a" not in cluster.images
        assert cluster.configuration.state_of("a") is VMState.RUNNING

    def test_apply_infeasible_action_raises(self, cluster):
        with pytest.raises(ExecutionError):
            cluster.apply_action(Run(vm="a", node="node-2"), time=0.0, duration=1.0)

    def test_update_demand(self, cluster):
        cluster.update_demand("a", 0)
        assert cluster.configuration.vm("a").cpu_demand == 0

    def test_utilization_views(self, cluster):
        assert cluster.cpu_utilization() == pytest.approx(2 / 6)
        assert cluster.memory_utilization_mb() == 1536
        assert cluster.overloaded_nodes() == []
        assert cluster.running_vms() == ("a", "b")

    def test_events_between(self, cluster):
        cluster.apply_action(Stop(vm="b", node="node-1"), time=50.0, duration=25.0)
        assert len(cluster.events_between(0.0, 100.0)) == 1
        assert cluster.events_between(60.0, 100.0) == []


class TestPlanExecutor:
    def test_execution_reaches_target_and_reports_durations(self):
        # Uniprocessor nodes: b can only reach node-0 once a has been suspended.
        cluster = SimulatedCluster(
            nodes=make_working_nodes(3, cpu_capacity=1, memory_capacity=4096)
        )
        cluster.add_vm(make_vm("a", memory=1024, cpu=1))
        cluster.add_vm(make_vm("b", memory=512, cpu=1))
        cluster.configuration.set_running("a", "node-0")
        cluster.configuration.set_running("b", "node-1")
        target = cluster.configuration.copy()
        target.set_sleeping("a")
        target.set_running("b", "node-0")
        plan = build_plan(cluster.configuration, target)
        report = PlanExecutor().execute(plan, cluster, start_time=100.0)

        assert cluster.configuration.same_assignment(target)
        assert report.start == 100.0
        assert report.duration > 0
        assert report.action_count == 2
        assert report.count(ActionKind.SUSPEND) == 1
        assert report.count(ActionKind.MIGRATE) == 1
        assert report.involved_nodes() == {"node-0", "node-1"}
        # pools execute sequentially: the migrate starts after the suspend ends
        suspend = next(a for a in report.actions if a.action.kind is ActionKind.SUSPEND)
        migrate = next(a for a in report.actions if a.action.kind is ActionKind.MIGRATE)
        assert migrate.start >= suspend.end

    def test_suspend_resume_actions_are_pipelined(self):
        cluster = SimulatedCluster(
            nodes=make_working_nodes(2, cpu_capacity=2, memory_capacity=4096)
        )
        for index in range(3):
            cluster.add_vm(make_vm(f"v{index}", memory=512, cpu=1, vjob="j"))
            cluster.configuration.set_running(f"v{index}", "node-0")
        target = cluster.configuration.copy()
        for index in range(3):
            target.set_sleeping(f"v{index}")
        plan = build_plan(cluster.configuration, target, {f"v{index}": "j" for index in range(3)})
        report = PlanExecutor(pipeline_delay=1.0).execute(plan, cluster)
        starts = sorted(a.start for a in report.actions)
        assert starts == [0.0, 1.0, 2.0]

    def test_estimate_duration_matches_execution(self, cluster):
        target = cluster.configuration.copy()
        target.set_sleeping("a")
        plan = build_plan(cluster.configuration, target)
        estimate = estimate_duration(plan)
        report = PlanExecutor().execute(plan, cluster)
        assert estimate == pytest.approx(report.duration)

    def test_empty_plan_has_zero_duration(self, cluster):
        plan = build_plan(cluster.configuration, cluster.configuration.copy())
        report = PlanExecutor().execute(plan, cluster)
        assert report.duration == 0.0
        assert report.action_count == 0
        assert estimate_duration(plan) == 0.0

    def test_remote_resume_takes_longer_than_local(self):
        def run_resume(destination):
            cluster = SimulatedCluster(
                nodes=make_working_nodes(2, cpu_capacity=2, memory_capacity=4096)
            )
            cluster.add_vm(make_vm("s", memory=2048, cpu=1))
            cluster.configuration.set_sleeping("s", "node-0")
            target = cluster.configuration.copy()
            target.set_running("s", destination)
            plan = build_plan(cluster.configuration, target)
            return PlanExecutor().execute(plan, cluster).duration

        assert run_resume("node-1") > run_resume("node-0")

    def test_durations_use_the_hypervisor_model(self, cluster):
        target = cluster.configuration.copy()
        target.set_terminated("b")
        plan = build_plan(cluster.configuration, target)
        report = PlanExecutor(hypervisor=DEFAULT_HYPERVISOR).execute(plan, cluster)
        assert report.duration == pytest.approx(DEFAULT_HYPERVISOR.stop_duration(512))
