"""Tests of the discrete-event simulation engine."""

import pytest

from repro.sim.engine import SimulationEngine


class TestScheduling:
    def test_events_run_in_chronological_order(self):
        engine = SimulationEngine()
        trace = []
        engine.schedule(10.0, lambda: trace.append("late"))
        engine.schedule(5.0, lambda: trace.append("early"))
        engine.run()
        assert trace == ["early", "late"]
        assert engine.now == 10.0

    def test_same_time_events_keep_insertion_order(self):
        engine = SimulationEngine()
        trace = []
        engine.schedule(1.0, lambda: trace.append("first"))
        engine.schedule(1.0, lambda: trace.append("second"))
        engine.run()
        assert trace == ["first", "second"]

    def test_schedule_at_absolute_time(self):
        engine = SimulationEngine(start_time=100.0)
        trace = []
        engine.schedule_at(150.0, lambda: trace.append(engine.now))
        engine.run()
        assert trace == [150.0]

    def test_cannot_schedule_in_the_past(self):
        engine = SimulationEngine(start_time=10.0)
        with pytest.raises(ValueError):
            engine.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            engine.schedule_at(5.0, lambda: None)

    def test_events_can_schedule_other_events(self):
        engine = SimulationEngine()
        trace = []
        engine.schedule(1.0, lambda: engine.schedule(1.0, lambda: trace.append(engine.now)))
        engine.run()
        assert trace == [2.0]

    def test_run_until_stops_before_later_events(self):
        engine = SimulationEngine()
        trace = []
        engine.schedule(5.0, lambda: trace.append("early"))
        engine.schedule(50.0, lambda: trace.append("late"))
        engine.run(until=10.0)
        assert trace == ["early"]
        assert engine.now == 10.0
        assert engine.pending_events == 1

    def test_cancelled_events_do_not_run(self):
        engine = SimulationEngine()
        trace = []
        handle = engine.schedule(1.0, lambda: trace.append("x"))
        handle.cancel()
        assert handle.cancelled
        engine.run()
        assert trace == []
        assert engine.pending_events == 0

    def test_advance_moves_the_clock(self):
        engine = SimulationEngine()
        engine.advance(42.0)
        assert engine.now == 42.0
        with pytest.raises(ValueError):
            engine.advance(-1.0)

    def test_run_until_without_events(self):
        engine = SimulationEngine()
        assert engine.run(until=30.0) == 30.0
