"""Unit tests of the fault-injection substrate (schedules, injector,
eviction, executor fault hooks)."""

from __future__ import annotations

import pytest

from repro.core.actions import Migrate
from repro.core.plan import Pool, ReconfigurationPlan
from repro.model import Configuration, make_working_nodes
from repro.model.errors import ModelError
from repro.sim import SimulatedCluster
from repro.sim.executor import PlanExecutor
from repro.sim.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    evict_node,
    random_fault_schedule,
)
from repro.testing import make_vm


class TestFaultSchedule:
    def test_fluent_builders_accumulate_events(self):
        schedule = (
            FaultSchedule()
            .node_crash("node-1", at=120.0)
            .node_slowdown("node-2", at=60.0, duration=300.0, factor=2.0)
            .migration_failure("vm1", at=30.0)
            .delayed_boot("node-3", until=240.0)
        )
        assert len(schedule) == 4
        kinds = [e.kind for e in schedule.ordered()]
        assert kinds == [
            FaultKind.MIGRATION_FAILURE,
            FaultKind.NODE_SLOWDOWN,
            FaultKind.NODE_CRASH,
            FaultKind.DELAYED_BOOT,
        ]

    def test_ordered_is_chronological(self):
        schedule = FaultSchedule().node_crash("b", at=50.0).node_crash("a", at=10.0)
        assert [e.target for e in schedule.ordered()] == ["a", "b"]

    def test_slowdown_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, kind=FaultKind.NODE_SLOWDOWN, target="n", factor=1.0)
        with pytest.raises(ValueError):
            FaultEvent(
                time=0.0,
                kind=FaultKind.NODE_SLOWDOWN,
                target="n",
                factor=2.0,
                duration=0.0,
            )
        with pytest.raises(ValueError):
            FaultEvent(time=-1.0, kind=FaultKind.NODE_CRASH, target="n")

    def test_empty_schedule_is_falsy_rate_makes_it_truthy(self):
        assert not FaultSchedule()
        assert FaultSchedule(migration_failure_rate=0.1)
        assert FaultSchedule().node_crash("n", at=1.0)


class TestRandomFaultSchedule:
    def test_same_seed_same_schedule(self):
        nodes = [f"node-{i}" for i in range(20)]
        a = random_fault_schedule(nodes, horizon=3600.0, seed=42, crash_rate_per_hour=1.0)
        b = random_fault_schedule(nodes, horizon=3600.0, seed=42, crash_rate_per_hour=1.0)
        assert [(e.time, e.target) for e in a.ordered()] == [
            (e.time, e.target) for e in b.ordered()
        ]

    def test_different_seeds_differ(self):
        nodes = [f"node-{i}" for i in range(20)]
        a = random_fault_schedule(nodes, horizon=3600.0, seed=1, crash_rate_per_hour=2.0)
        b = random_fault_schedule(nodes, horizon=3600.0, seed=2, crash_rate_per_hour=2.0)
        assert [(e.time, e.target) for e in a.ordered()] != [
            (e.time, e.target) for e in b.ordered()
        ]

    def test_max_crashes_caps_and_keeps_earliest(self):
        nodes = [f"node-{i}" for i in range(50)]
        schedule = random_fault_schedule(
            nodes, horizon=36000.0, seed=7, crash_rate_per_hour=5.0, max_crashes=3
        )
        crashes = schedule.of_kind(FaultKind.NODE_CRASH)
        assert len(crashes) == 3
        assert crashes == sorted(crashes, key=lambda e: e.time)

    def test_slowdown_windows_inside_horizon(self):
        schedule = random_fault_schedule(
            ["n0", "n1"], horizon=1800.0, seed=3, slowdown_rate_per_hour=4.0
        )
        for event in schedule.of_kind(FaultKind.NODE_SLOWDOWN):
            assert 0 <= event.time < 1800.0
            assert event.factor == 2.0


class TestFaultInjector:
    def test_fire_returns_due_events_once(self):
        schedule = FaultSchedule().node_crash("a", at=10.0).node_crash("b", at=50.0)
        injector = FaultInjector(schedule)
        assert [e.target for e in injector.fire(20.0)] == ["a"]
        assert injector.fire(20.0) == []
        assert [e.target for e in injector.fire(100.0)] == ["b"]
        assert injector.pending_events == 0

    def test_slowdown_factor_window(self):
        schedule = FaultSchedule().node_slowdown("n", at=100.0, duration=50.0, factor=3.0)
        injector = FaultInjector(schedule)
        assert injector.slowdown_factor("n", 99.0) == 1.0
        assert injector.slowdown_factor("n", 100.0) == 3.0
        assert injector.slowdown_factor("n", 149.0) == 3.0
        assert injector.slowdown_factor("n", 150.0) == 1.0
        assert injector.slowdown_factor("other", 120.0) == 1.0

    def test_overlapping_slowdowns_take_the_worst_factor(self):
        schedule = (
            FaultSchedule()
            .node_slowdown("n", at=0.0, duration=100.0, factor=2.0)
            .node_slowdown("n", at=50.0, duration=100.0, factor=4.0)
        )
        injector = FaultInjector(schedule)
        assert injector.slowdown_factor("n", 75.0) == 4.0

    def test_scripted_migration_failure_is_one_shot(self):
        schedule = FaultSchedule().migration_failure("vm1", at=100.0)
        injector = FaultInjector(schedule)
        assert not injector.should_fail_migration("vm1", 50.0)
        assert injector.should_fail_migration("vm1", 150.0)
        assert not injector.should_fail_migration("vm1", 200.0)

    def test_stochastic_migration_failures_are_seeded(self):
        def draws(seed):
            injector = FaultInjector(
                FaultSchedule(migration_failure_rate=0.5, seed=seed)
            )
            return [injector.should_fail_migration("vm", 0.0) for _ in range(32)]

        assert draws(9) == draws(9)
        assert draws(9) != draws(10)
        assert any(draws(9)) and not all(draws(9))

    def test_delayed_boot_nodes_listed(self):
        schedule = FaultSchedule().delayed_boot("late", until=60.0)
        assert FaultInjector(schedule).delayed_boot_nodes() == ("late",)


class TestEvictNode:
    def _configuration(self):
        configuration = Configuration(nodes=make_working_nodes(3, cpu_capacity=2))
        configuration.add_vm(make_vm("running", memory=512, cpu=1))
        configuration.add_vm(make_vm("sleeping", memory=512))
        configuration.add_vm(make_vm("elsewhere", memory=512, cpu=1))
        configuration.set_running("running", "node-0")
        configuration.set_running("sleeping", "node-0")
        configuration.set_sleeping("sleeping", "node-0")
        configuration.set_running("elsewhere", "node-1")
        return configuration

    def test_running_vms_and_images_are_reset_node_removed(self):
        configuration = self._configuration()
        eviction = evict_node(configuration, "node-0")
        assert eviction.displaced_vms == ("running",)
        assert eviction.lost_images == ("sleeping",)
        assert not configuration.has_node("node-0")
        assert configuration.state_of("running").value == "waiting"
        assert configuration.state_of("sleeping").value == "waiting"
        assert configuration.location_of("elsewhere") == "node-1"

    def test_remove_node_refuses_occupied_node(self):
        configuration = self._configuration()
        with pytest.raises(ModelError):
            configuration.remove_node("node-0")

    def test_remove_node_returns_the_node_for_rejoin(self):
        configuration = self._configuration()
        node = configuration.remove_node("node-2")
        assert node.name == "node-2"
        configuration.add_node(node)
        assert configuration.has_node("node-2")


class TestExecutorFaultHooks:
    def _cluster_with_migration_plan(self):
        nodes = make_working_nodes(2, cpu_capacity=2, memory_capacity=3584)
        cluster = SimulatedCluster(nodes=nodes)
        vm = make_vm("vm1", memory=1024, cpu=1)
        cluster.add_vm(vm)
        cluster.configuration.set_running("vm1", "node-0")
        source = cluster.configuration.copy()
        plan = ReconfigurationPlan(
            source=source,
            pools=[Pool([Migrate("vm1", "node-0", "node-1")])],
        )
        return cluster, plan

    def test_vetoed_migration_leaves_vm_on_source(self):
        cluster, plan = self._cluster_with_migration_plan()
        injector = FaultInjector(FaultSchedule().migration_failure("vm1"))
        executor = PlanExecutor(fault_injector=injector)
        report = executor.execute(plan, cluster)
        assert report.actions == []
        assert len(report.failures) == 1
        assert report.failures[0].reason == "migration-fault"
        assert cluster.configuration.location_of("vm1") == "node-0"
        # the aborted attempt still wasted wall-clock time on both nodes
        assert report.duration > 0
        assert report.involved_nodes() == {"node-0", "node-1"}

    def test_without_injector_migration_succeeds(self):
        cluster, plan = self._cluster_with_migration_plan()
        report = PlanExecutor().execute(plan, cluster)
        assert len(report.actions) == 1
        assert report.failures == []
        assert cluster.configuration.location_of("vm1") == "node-1"
