"""Tests of the monitoring service (Ganglia substitute)."""

import pytest

from repro.model.configuration import Configuration
from repro.model.node import make_working_nodes
from repro.sim.monitoring import MonitoringService, constant_demands

from repro.testing import make_vm


@pytest.fixture
def configuration():
    configuration = Configuration(nodes=make_working_nodes(2, cpu_capacity=2, memory_capacity=4096))
    configuration.add_vm(make_vm("a", memory=1024, cpu=1))
    configuration.add_vm(make_vm("b", memory=512, cpu=0))
    configuration.set_running("a", "node-0")
    configuration.set_running("b", "node-0")
    return configuration


class TestObservation:
    def test_observe_returns_demands(self, configuration):
        service = MonitoringService(constant_demands({"a": 1, "b": 0}))
        observation = service.observe(0.0, configuration)
        assert observation.demand_of("a") == 1
        assert observation.demand_of("b") == 0
        assert observation.demand_of("ghost") == 0
        assert not observation.stale

    def test_node_usage_combines_demand_and_memory(self, configuration):
        service = MonitoringService(constant_demands({"a": 1, "b": 0}))
        observation = service.observe(0.0, configuration)
        assert observation.node_usage["node-0"].cpu == 1
        assert observation.node_usage["node-0"].memory == 1536
        assert observation.node_usage["node-1"].cpu == 0

    def test_time_varying_source(self):
        def source(time):
            return {"a": 1 if time < 100 else 0}

        service = MonitoringService(source)
        assert service.observe(0.0).demand_of("a") == 1
        assert service.observe(200.0).demand_of("a") == 0


class TestStaleness:
    def test_observation_right_after_reconfiguration_is_stale(self, configuration):
        values = {"a": 1}
        service = MonitoringService(lambda t: values, refresh_delay=10.0)
        service.observe(0.0, configuration)
        service.notify_reconfiguration(50.0)
        values["a"] = 0  # the real demand changed
        stale = service.observe(55.0, configuration)
        assert stale.stale
        assert stale.demand_of("a") == 1  # still the previous value

    def test_observation_after_refresh_delay_is_fresh(self, configuration):
        values = {"a": 1}
        service = MonitoringService(lambda t: values, refresh_delay=10.0)
        service.observe(0.0, configuration)
        service.notify_reconfiguration(50.0)
        values["a"] = 0
        fresh = service.observe(61.0, configuration)
        assert not fresh.stale
        assert fresh.demand_of("a") == 0

    def test_no_previous_observation_means_fresh(self, configuration):
        service = MonitoringService(constant_demands({"a": 1}), refresh_delay=10.0)
        service.notify_reconfiguration(0.0)
        observation = service.observe(1.0, configuration)
        assert not observation.stale
