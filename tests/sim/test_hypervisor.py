"""Tests of the calibrated hypervisor duration model (Section 2.3, Figure 3)."""

import pytest

from repro import config
from repro.core.actions import Migrate, Resume, Run, Stop, Suspend
from repro.model.configuration import Configuration
from repro.model.node import make_working_nodes
from repro.sim.hypervisor import DEFAULT_HYPERVISOR, FAST_STOP_HYPERVISOR, HypervisorModel
from repro.sim.storage import TransferMethod

from repro.testing import make_vm


@pytest.fixture
def configuration():
    configuration = Configuration(nodes=make_working_nodes(2, memory_capacity=8192))
    configuration.add_vm(make_vm("vm", memory=2048, cpu=1))
    configuration.set_running("vm", "node-0")
    return configuration


class TestFigure3a:
    """Run/migrate/stop durations."""

    def test_boot_duration_is_memory_independent(self):
        model = DEFAULT_HYPERVISOR
        assert model.run_duration(512) == model.run_duration(2048) == pytest.approx(6.0)

    def test_clean_shutdown_is_about_25_seconds(self):
        assert DEFAULT_HYPERVISOR.stop_duration(1024) == pytest.approx(25.0)

    def test_hard_shutdown_is_much_faster(self):
        assert FAST_STOP_HYPERVISOR.stop_duration(1024) < 5.0

    def test_migration_grows_with_memory(self):
        model = DEFAULT_HYPERVISOR
        assert model.migrate_duration(512) < model.migrate_duration(1024) < model.migrate_duration(2048)

    def test_migrating_2gb_takes_up_to_26_seconds(self):
        assert 15.0 <= DEFAULT_HYPERVISOR.migrate_duration(2048) <= 26.0


class TestFigure3bAnd3c:
    """Suspend/resume durations, local vs remote."""

    def test_suspend_grows_with_memory(self):
        model = DEFAULT_HYPERVISOR
        assert model.suspend_duration(512) < model.suspend_duration(2048)

    def test_remote_suspend_is_about_twice_the_local_one(self):
        model = DEFAULT_HYPERVISOR
        local = model.suspend_duration(1024, local=True)
        remote = model.suspend_duration(1024, local=False)
        assert remote == pytest.approx(local * config.SUSPEND_REMOTE_FACTOR_SCP)

    def test_remote_resume_is_about_twice_the_local_one(self):
        model = DEFAULT_HYPERVISOR
        local = model.resume_duration(2048, local=True)
        remote = model.resume_duration(2048, local=False)
        assert remote / local == pytest.approx(2.0, rel=0.1)

    def test_remote_resume_of_2gb_is_in_the_minutes_range(self):
        remote = DEFAULT_HYPERVISOR.resume_duration(2048, local=False)
        assert 120.0 <= remote <= 240.0

    def test_rsync_transfer_is_slightly_cheaper_than_scp(self):
        scp = HypervisorModel(transfer_method=TransferMethod.SCP)
        rsync = HypervisorModel(transfer_method=TransferMethod.RSYNC)
        assert rsync.resume_duration(1024, local=False) < scp.resume_duration(
            1024, local=False
        )


class TestActionDispatch:
    def test_action_duration_dispatch(self, configuration):
        model = DEFAULT_HYPERVISOR
        configuration.add_vm(make_vm("sleepy", memory=1024))
        configuration.set_sleeping("sleepy", "node-0")
        configuration.add_vm(make_vm("fresh", memory=512))

        assert model.action_duration(Run(vm="fresh", node="node-1"), configuration) == 6.0
        assert model.action_duration(Stop(vm="vm", node="node-0"), configuration) == 25.0
        migrate = Migrate(vm="vm", source_node="node-0", destination_node="node-1")
        assert model.action_duration(migrate, configuration) == pytest.approx(
            model.migrate_duration(2048)
        )
        suspend = Suspend(vm="vm", node="node-0")
        assert model.action_duration(suspend, configuration) == pytest.approx(
            model.suspend_duration(2048)
        )
        local = Resume(vm="sleepy", image_node="node-0", destination_node="node-0")
        remote = Resume(vm="sleepy", image_node="node-0", destination_node="node-1")
        assert model.action_duration(remote, configuration) > model.action_duration(
            local, configuration
        )

    def test_unknown_action_type_rejected(self, configuration):
        class Fake:
            vm = "vm"

        with pytest.raises(TypeError):
            DEFAULT_HYPERVISOR.action_duration(Fake(), configuration)  # type: ignore[arg-type]

    def test_interference_factors(self):
        model = DEFAULT_HYPERVISOR
        local_resume = Resume(vm="v", image_node="a", destination_node="a")
        remote_resume = Resume(vm="v", image_node="a", destination_node="b")
        assert model.interference_factor(remote_resume) > model.interference_factor(
            local_resume
        )
        assert model.interference_factor(Run(vm="v", node="a")) == 1.0
        assert model.interference_factor(
            Migrate(vm="v", source_node="a", destination_node="b")
        ) == pytest.approx(config.INTERFERENCE_FACTOR_LOCAL)
