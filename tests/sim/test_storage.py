"""Tests of the suspend-image store and transfer model."""

import pytest

from repro.sim.storage import ImageStore, TransferMethod, remote_factor, transfer_duration


class TestTransferModel:
    def test_local_transfer_is_free(self):
        assert transfer_duration(2048, TransferMethod.LOCAL) == 0.0

    def test_remote_transfer_grows_with_size(self):
        assert transfer_duration(512, TransferMethod.SCP) < transfer_duration(
            2048, TransferMethod.SCP
        )

    def test_rsync_is_cheaper_than_scp(self):
        assert transfer_duration(1024, TransferMethod.RSYNC) < transfer_duration(
            1024, TransferMethod.SCP
        )

    def test_remote_factors(self):
        assert remote_factor(TransferMethod.LOCAL) == 1.0
        assert remote_factor(TransferMethod.SCP) == pytest.approx(2.0)
        assert remote_factor(TransferMethod.RSYNC) > 1.0


class TestImageStore:
    def test_store_and_lookup(self):
        store = ImageStore()
        store.store("vm1", "node-3", 1024, time=42.0)
        assert "vm1" in store
        assert store.location_of("vm1") == "node-3"
        assert len(store) == 1

    def test_unknown_vm_has_no_location(self):
        assert ImageStore().location_of("ghost") is None

    def test_discard(self):
        store = ImageStore()
        store.store("vm1", "node-3", 1024)
        store.discard("vm1")
        assert "vm1" not in store
        store.discard("vm1")  # idempotent

    def test_move(self):
        store = ImageStore()
        store.store("vm1", "node-3", 1024)
        store.move("vm1", "node-5")
        assert store.location_of("vm1") == "node-5"
        store.move("ghost", "node-1")  # no-op

    def test_store_overwrites_previous_image(self):
        store = ImageStore()
        store.store("vm1", "node-1", 1024)
        store.store("vm1", "node-2", 1024)
        assert store.location_of("vm1") == "node-2"
        assert len(store) == 1
