"""The independent checker: configurations, whole plans (continuous
satisfaction at pool granularity), and rejection of corrupted plans."""

from __future__ import annotations

import pytest

from repro.constraints import (
    Ban,
    Fence,
    Root,
    Spread,
    check_configuration,
    check_plan,
    plan_stages,
    violated_constraints,
)
from repro.core.actions import Migrate, Run
from repro.core.plan import plan_from_pools
from repro.core.planner import PlannerOptions, ReconfigurationPlanner, build_plan
from repro.model.configuration import Configuration
from repro.model.errors import PlanningError
from repro.model.node import make_working_nodes
from repro.testing import make_vm


@pytest.fixture
def configuration():
    configuration = Configuration(
        nodes=make_working_nodes(3, cpu_capacity=2, memory_capacity=4096)
    )
    for name in ("a", "b", "c"):
        configuration.add_vm(make_vm(name, memory=512, cpu=1))
    configuration.set_running("a", "node-0")
    configuration.set_running("b", "node-0")
    configuration.set_running("c", "node-1")
    return configuration


class TestConfigurationChecks:
    def test_reports_one_violation_per_broken_constraint(self, configuration):
        violations = check_configuration(
            configuration,
            [Spread(["a", "b"]), Ban(["c"], ["node-1"]), Ban(["c"], ["node-2"])],
        )
        assert len(violations) == 2
        assert {v.constraint for v in violations} == {
            "Spread(a, b)",
            "Ban(c | node-1)",
        }
        assert all(v.stage is None for v in violations)

    def test_violated_constraints_keeps_the_boolean_face(self, configuration):
        violated = violated_constraints(
            configuration, [Spread(["a", "b"]), Spread(["a", "c"])]
        )
        assert len(violated) == 1
        assert isinstance(violated[0], Spread)

    def test_clean_configuration_reports_nothing(self, configuration):
        assert check_configuration(configuration, [Spread(["a", "c"])]) == []
        assert check_configuration(configuration, []) == []


class TestPlanChecks:
    def test_plan_stages_walk_every_pool_boundary(self, configuration):
        target = configuration.copy()
        target.migrate("b", "node-2")
        plan = build_plan(configuration, target)
        stages = list(plan_stages(plan))
        assert len(stages) == len(plan.pools) + 1
        assert stages[0].location_of("b") == "node-0"
        assert stages[-1].location_of("b") == "node-2"

    def test_clean_plan_passes(self, configuration):
        target = configuration.copy()
        target.migrate("b", "node-2")
        plan = build_plan(configuration, target)
        assert check_plan(plan, [Spread(["a", "b"]), Ban(["b"], ["node-1"])]) == []

    def test_transient_violation_is_flagged_with_its_stage(self, configuration):
        # migrate b onto c's node: every state from that pool on violates
        # the spread over (b, c)
        target = configuration.copy()
        target.migrate("b", "node-1")
        plan = build_plan(configuration, target)
        violations = check_plan(plan, [Spread(["b", "c"])])
        assert violations
        assert all(v.stage is not None and v.stage >= 1 for v in violations)
        assert all("Spread(b, c)" == v.constraint for v in violations)

    def test_include_source_reports_preexisting_breaches(self, configuration):
        plan = plan_from_pools(configuration, [])
        spread = Spread(["a", "b"])  # already violated before any action
        assert check_plan(plan, [spread]) == []
        sourced = check_plan(plan, [spread], include_source=True)
        assert [v.stage for v in sourced] == [0]

    def test_root_transition_checked_against_the_source(self, configuration):
        target = configuration.copy()
        target.migrate("b", "node-2")
        plan = build_plan(configuration, target)
        violations = check_plan(plan, [Root(["b"])])
        assert violations
        assert any("migrated" in v.message for v in violations)

    def test_checker_rejects_corrupted_plans(self, configuration):
        # hand-forge a plan that boots the waiting VM onto a banned node
        configuration.set_waiting("c")
        forged = plan_from_pools(
            configuration, [[Run(vm="c", node="node-2")]]
        )
        ban = Ban(["c"], ["node-2"])
        violations = check_plan(forged, [ban])
        assert [v.constraint for v in violations] == [ban.label]

    def test_checker_rejects_mutated_migrations(self, configuration):
        forged = plan_from_pools(
            configuration,
            [[Migrate(vm="a", source_node="node-0", destination_node="node-1")]],
        )
        violations = check_plan(forged, [Spread(["a", "c"])])
        assert violations and violations[0].stage == 1


class TestPlannerWiring:
    def test_planner_records_violations_on_the_plan(self, configuration):
        target = configuration.copy()
        target.migrate("b", "node-1")
        plan = ReconfigurationPlanner().build(
            configuration, target, constraints=[Spread(["b", "c"])]
        )
        assert not plan.honours_constraints
        assert plan.constraint_violations

    def test_unconstrained_plans_carry_no_bookkeeping(self, configuration):
        target = configuration.copy()
        target.migrate("b", "node-2")
        plan = ReconfigurationPlanner().build(configuration, target)
        assert plan.honours_constraints
        assert plan.constraint_violations == []

    def test_strict_mode_raises_instead(self, configuration):
        target = configuration.copy()
        target.migrate("b", "node-1")
        planner = ReconfigurationPlanner(
            PlannerOptions(strict_constraints=True)
        )
        with pytest.raises(PlanningError, match="transiently violates"):
            planner.build(configuration, target, constraints=[Spread(["b", "c"])])

    def test_satisfied_constraints_leave_the_plan_clean(self, configuration):
        target = configuration.copy()
        target.migrate("b", "node-2")
        plan = ReconfigurationPlanner().build(
            configuration, target, constraints=[Spread(["a", "b"])]
        )
        assert plan.honours_constraints
