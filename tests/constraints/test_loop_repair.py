"""End-to-end constraint enforcement in the control loop: constrained
scenarios through the facade, heuristic policies filtering candidates,
violation recording, and the node-crash repair path (fault-driven replanning
re-applies the catalog on the survivors)."""

from __future__ import annotations

import pytest

from repro import FaultSchedule, Scenario
from repro.api import ExperimentBuilder, RecordingObserver
from repro.constraints import (
    Ban,
    CandidateFilter,
    Fence,
    Spread,
    check_configuration,
)
from repro.decision.fcfs import FCFSDecisionModule
from repro.decision.ffd import FFDDecisionModule, ffd_place
from repro.model.configuration import Configuration
from repro.model.node import make_working_nodes
from repro.model.queue import VJobQueue
from repro.model.vm import VMState
from repro.testing import make_vm, make_workload


def nodes(count=3):
    return make_working_nodes(count, cpu_capacity=2, memory_capacity=3584)


class TestGreedyFiltering:
    def test_ffd_place_honours_a_candidate_filter(self):
        configuration = Configuration(nodes=nodes(2))
        vm = make_vm("x", memory=512, cpu=1)
        configuration.add_vm(vm)
        ban = CandidateFilter([Ban(["x"], ["node-0"])])
        placement = ffd_place(configuration, [vm], node_filter=ban)
        assert placement == {"x": "node-1"}

    def test_ffd_place_fails_when_the_filter_excludes_everything(self):
        configuration = Configuration(nodes=nodes(2))
        vm = make_vm("x", memory=512, cpu=1)
        configuration.add_vm(vm)
        everywhere = CandidateFilter([Ban(["x"], ["node-0", "node-1"])])
        assert ffd_place(configuration, [vm], node_filter=everywhere) is None

    def test_ffd_module_builds_constrained_targets(self):
        configuration = Configuration(nodes=nodes(3))
        queue = VJobQueue()
        vjob = make_workload("w", vm_count=2, duration=60.0).vjob
        for vm in vjob.vms:
            configuration.add_vm(vm)
        queue.submit(vjob)
        module = FFDDecisionModule()
        module.use_constraints([Spread(["w.vm0", "w.vm1"])])
        decision = module.decide(configuration, queue, {})
        assert decision.target is not None
        assert check_configuration(
            decision.target, [Spread(["w.vm0", "w.vm1"])]
        ) == []
        assert decision.target.location_of("w.vm0") != decision.target.location_of(
            "w.vm1"
        )

    def test_fcfs_module_admission_respects_a_fence(self):
        configuration = Configuration(nodes=nodes(3))
        queue = VJobQueue()
        vjob = make_workload("w", vm_count=2, duration=60.0).vjob
        for vm in vjob.vms:
            configuration.add_vm(vm)
        queue.submit(vjob)
        module = FCFSDecisionModule(
            constraints=[Fence(["w.vm0", "w.vm1"], ["node-2"])]
        )
        decision = module.decide(configuration, queue, {})
        placement = decision.metadata["trial_placement"]
        assert placement["w.vm0"] == "node-2"
        assert placement["w.vm1"] == "node-2"


class TestConstrainedScenarios:
    def test_consolidation_honours_spread_all_run_long(self):
        spread = Spread(["w.vm0", "w.vm1"])
        observer = RecordingObserver()
        scenario = (
            Scenario(
                nodes=nodes(3),
                workloads=[make_workload("w", vm_count=2, duration=90.0)],
                policy="consolidation",
                optimizer_timeout=10.0,
                max_time=3600.0,
            )
            .with_constraints(spread)
            .observe(observer)
        )
        result = scenario.run()
        assert result.completed("w")
        assert result.honoured_constraints
        assert result.constraint_violation_counts == {}
        assert result.metadata["constraints"] == [spread.label]

    def test_builder_supports_constraints(self):
        result = (
            ExperimentBuilder()
            .nodes(nodes(3))
            .workloads([make_workload("w", vm_count=2, duration=60.0)])
            .policy("ffd")
            .constraints(Spread(["w.vm0", "w.vm1"]))
            .max_time(3600.0)
            .run()
        )
        assert result.completed("w")
        assert result.honoured_constraints

    def test_with_constraints_returns_an_independent_copy(self):
        base = Scenario(
            nodes=nodes(3),
            workloads=[make_workload("w", vm_count=2, duration=60.0)],
        )
        constrained = base.with_constraints(Spread(["w.vm0", "w.vm1"]))
        assert base.constraints == []
        assert len(constrained.constraints) == 1

    def test_violations_are_recorded_not_silently_dropped(self):
        class StubbornPolicy:
            """Pins every waiting VM to node-0, constraints be damned."""

            name = "stubborn"

            def decide(self, configuration, queue, demands=None):
                from repro.api.decision import Decision

                vm_states = {}
                target = configuration.copy()
                for vjob in queue.pending():
                    for vm in vjob.vms:
                        if configuration.state_of(vm.name) is VMState.WAITING:
                            target.set_running(vm.name, "node-0")
                            vm_states[vm.name] = VMState.RUNNING
                from repro.api.decision import stop_terminated_vms

                stop_terminated_vms(configuration, queue, vm_states)
                return Decision(vm_states=vm_states, target=target)

        ban = Ban(["w.vm0"], ["node-0"])
        result = Scenario(
            nodes=nodes(2),
            workloads=[make_workload("w", vm_count=1, duration=60.0)],
            policy=StubbornPolicy(),
            max_time=1800.0,
        ).with_constraints(ban).run()
        assert not result.honoured_constraints
        counts = result.constraint_violation_counts
        assert counts.get(ban.label, 0) >= 1
        phases = {record.phase for record in result.constraint_violations}
        # the breach shows up in the intended plan, during execution and on
        # the settled configuration
        assert {"plan", "execution", "configuration"} <= phases
        assert all(
            record.constraint == ban.label
            for record in result.constraint_violations
        )
        # both pool-granular phases number the same boundary identically
        # (stage = pools applied, 1-based)
        plan_stages_seen = {
            r.stage for r in result.constraint_violations if r.phase == "plan"
        }
        execution_stages = {
            r.stage
            for r in result.constraint_violations
            if r.phase == "execution"
        }
        assert execution_stages <= plan_stages_seen
        assert all(stage >= 1 for stage in execution_stages)


class TestCrashRepair:
    def crash_scenario(self, constraints, fleet=4):
        return Scenario(
            nodes=nodes(fleet),
            workloads=[make_workload("w", vm_count=2, duration=600.0)],
            policy="consolidation",
            optimizer_timeout=10.0,
            max_time=7200.0,
            faults=FaultSchedule().node_crash("node-0", at=60.0),
        ).with_constraints(*constraints)

    def test_replan_after_crash_still_honours_spread(self):
        spread = Spread(["w.vm0", "w.vm1"])
        result = self.crash_scenario([spread]).run()
        # the vjob was knocked out, repaired, and finished
        assert result.repair_latencies.get("w") is not None
        assert result.completed("w")
        assert result.unfinished_vjobs == []
        # the catalog was re-applied on the survivors: no violation ever
        assert result.honoured_constraints

    def test_elastic_fence_repairs_onto_the_survivors(self):
        fence = Fence(
            ["w.vm0", "w.vm1"], ["node-0", "node-1"], elastic=True
        )
        result = self.crash_scenario([fence]).run()
        assert result.completed("w")
        assert result.honoured_constraints
        # the declaration is stable; the repair hook swapped the *active*
        # fence for its shrunken twin
        assert result.metadata["constraints"] == [fence.label]
        assert result.metadata["active_constraints"] == [
            "Fence(w.vm0, w.vm1 | node-1)"
        ]

    def test_fully_dead_elastic_fence_retires(self):
        fence = Fence(["w.vm0", "w.vm1"], ["node-0"], elastic=True)
        result = self.crash_scenario([fence]).run()
        assert result.completed("w")
        # the run stays identifiable as constrained, but nothing remains
        # active to honour or record
        assert result.metadata["constraints"] == [fence.label]
        assert result.metadata["active_constraints"] == []
        assert result.honoured_constraints
