"""Semantics of the nine catalog relations: checker face, unary compile
face, greedy filter face and repair hooks."""

from __future__ import annotations

import pytest

from repro.constraints import (
    Among,
    Ban,
    CATALOG,
    Fence,
    Gather,
    Lonely,
    MaxOnline,
    Root,
    RunningCapacity,
    Spread,
)
from repro.model.configuration import Configuration
from repro.model.node import make_working_nodes
from repro.testing import make_vm


@pytest.fixture
def configuration():
    configuration = Configuration(
        nodes=make_working_nodes(4, cpu_capacity=2, memory_capacity=4096)
    )
    for name in ("a", "b", "c", "d"):
        configuration.add_vm(make_vm(name, memory=512, cpu=1))
    configuration.set_running("a", "node-0")
    configuration.set_running("b", "node-0")
    configuration.set_running("c", "node-1")
    configuration.set_waiting("d")
    return configuration


class TestCatalogShape:
    def test_catalog_lists_all_nine_relations(self):
        names = [constraint.__name__ for constraint in CATALOG]
        assert names == [
            "Spread",
            "Gather",
            "Ban",
            "Fence",
            "Among",
            "Root",
            "MaxOnline",
            "RunningCapacity",
            "Lonely",
        ]

    def test_labels_are_stable_and_informative(self):
        assert Spread(["a", "b"]).label == "Spread(a, b)"
        assert "node-1" in Fence(["a"], ["node-1"]).label
        assert "<= 2" in MaxOnline(["node-0", "node-1"], 2).label
        assert "<= 3" in RunningCapacity(["node-0"], 3).label

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Spread([])
        with pytest.raises(ValueError):
            Ban(["a"], [])
        with pytest.raises(ValueError):
            Fence(["a"], [])
        with pytest.raises(ValueError):
            Among(["a"], [])
        with pytest.raises(ValueError):
            Among(["a"], [[]])
        with pytest.raises(ValueError):
            MaxOnline([], 1)
        with pytest.raises(ValueError):
            MaxOnline(["node-0"], -1)
        with pytest.raises(ValueError):
            RunningCapacity(["node-0"], -2)


class TestSpread:
    def test_satisfaction_and_explanation(self, configuration):
        violated = Spread(["a", "b"])
        assert not violated.is_satisfied_by(configuration)
        assert "node-0" in violated.explain(configuration)
        satisfied = Spread(["a", "c"])
        assert satisfied.is_satisfied_by(configuration)
        assert satisfied.explain(configuration) is None

    def test_collocation_nodes_tolerate_sharing(self, configuration):
        tolerant = Spread(["a", "b"], collocation_nodes=["node-0"])
        assert tolerant.is_satisfied_by(configuration)

    def test_greedy_filter(self, configuration):
        spread = Spread(["a", "b"])
        assert not spread.allows("b", "node-0", configuration)
        assert spread.allows("b", "node-2", configuration)
        # VMs outside the group are never filtered
        assert spread.allows("zzz", "node-0", configuration)


class TestGather:
    def test_satisfaction(self, configuration):
        assert Gather(["a", "b"]).is_satisfied_by(configuration)
        assert not Gather(["a", "c"]).is_satisfied_by(configuration)
        assert "scattered" in Gather(["a", "c"]).explain(configuration)

    def test_greedy_filter(self, configuration):
        gather = Gather(["a", "d"])
        assert gather.allows("d", "node-0", configuration)
        assert not gather.allows("d", "node-2", configuration)


class TestBanAndFence:
    def test_ban(self, configuration):
        assert Ban(["a"], ["node-2"]).is_satisfied_by(configuration)
        offending = Ban(["a"], ["node-0"])
        assert not offending.is_satisfied_by(configuration)
        assert "node-0" in offending.explain(configuration)
        nodes = configuration.node_names
        assert Ban(["a"], ["node-0"]).allowed_nodes("a", nodes) == {
            "node-1",
            "node-2",
            "node-3",
        }
        assert Ban(["a"], ["node-0"]).allowed_nodes("other", nodes) is None

    def test_fence(self, configuration):
        assert Fence(["a", "b"], ["node-0"]).is_satisfied_by(configuration)
        escaped = Fence(["c"], ["node-0"])
        assert not escaped.is_satisfied_by(configuration)
        assert "node-1" in escaped.explain(configuration)
        nodes = configuration.node_names
        assert Fence(["a"], ["node-1"]).allowed_nodes("a", nodes) == {"node-1"}

    def test_strict_fence_survives_node_failure_unchanged(self):
        fence = Fence(["a"], ["node-0", "node-1"])
        assert fence.on_node_failure("node-0") is fence

    def test_elastic_fence_drops_dead_nodes_then_retires(self):
        fence = Fence(["a"], ["node-0", "node-1"], elastic=True)
        shrunk = fence.on_node_failure("node-0")
        assert isinstance(shrunk, Fence)
        assert shrunk.nodes == frozenset({"node-1"})
        assert shrunk.elastic
        assert shrunk.on_node_failure("node-1") is None

    def test_elastic_fence_ignores_foreign_node_failure(self):
        fence = Fence(["a"], ["node-0"], elastic=True)
        assert fence.on_node_failure("node-9") is fence


class TestAmong:
    def test_satisfaction(self, configuration):
        groups = [["node-0", "node-1"], ["node-2", "node-3"]]
        assert Among(["a", "c"], groups).is_satisfied_by(configuration)
        straddling = Among(["a", "c"], [["node-0"], ["node-1"]])
        assert not straddling.is_satisfied_by(configuration)
        assert "straddle" in straddling.explain(configuration)

    def test_unary_restriction_is_the_union(self, configuration):
        among = Among(["a"], [["node-0"], ["node-2"]])
        nodes = configuration.node_names
        assert among.allowed_nodes("a", nodes) == {"node-0", "node-2"}
        assert among.allowed_nodes("other", nodes) is None

    def test_greedy_filter_commits_to_a_group(self, configuration):
        among = Among(["a", "d"], [["node-0", "node-1"], ["node-2", "node-3"]])
        # "a" runs on node-0, so "d" must stay in the first group
        assert among.allows("d", "node-1", configuration)
        assert not among.allows("d", "node-2", configuration)


class TestRoot:
    def test_static_check_is_vacuous(self, configuration):
        assert Root(["a"]).is_satisfied_by(configuration)

    def test_transition_detects_migration(self, configuration):
        moved = configuration.copy()
        moved.migrate("a", "node-2")
        root = Root(["a"])
        assert not root.is_transition_satisfied(configuration, moved)
        assert "a" in root.explain_transition(configuration, moved)
        assert root.is_transition_satisfied(configuration, configuration.copy())

    def test_stop_and_restart_elsewhere_still_counts_as_relocation(
        self, configuration
    ):
        # within one plan window, a pinned VM running at both ends must be on
        # the same host — a stop/restart detour does not launder the move
        rebooted = configuration.copy()
        rebooted.set_waiting("a")
        rebooted.set_running("a", "node-3")
        assert not Root(["a"]).is_transition_satisfied(configuration, rebooted)

    def test_a_vm_waiting_in_the_reference_may_boot_anywhere(
        self, configuration
    ):
        # the crash-repair semantics: an evicted (Waiting) VM is unpinned
        booted = configuration.copy()
        booted.set_running("d", "node-3")
        assert Root(["d"]).is_transition_satisfied(configuration, booted)

    def test_unary_restriction_pins_running_vms(self, configuration):
        root = Root(["a", "d"])
        nodes = configuration.node_names
        assert root.allowed_nodes("a", nodes, configuration) == {"node-0"}
        # a waiting VM is free, and without a configuration nothing is known
        assert root.allowed_nodes("d", nodes, configuration) is None
        assert root.allowed_nodes("a", nodes) is None

    def test_greedy_filter_uses_the_reference(self, configuration):
        root = Root(["a"])
        assert root.allows("a", "node-0", configuration, configuration)
        assert not root.allows("a", "node-1", configuration, configuration)


class TestMaxOnline:
    def test_satisfaction(self, configuration):
        assert MaxOnline(["node-0", "node-1"], 2).is_satisfied_by(configuration)
        capped = MaxOnline(["node-0", "node-1"], 1)
        assert not capped.is_satisfied_by(configuration)
        assert "maximum is 1" in capped.explain(configuration)

    def test_greedy_filter(self, configuration):
        capped = MaxOnline(["node-2", "node-3"], 1)
        trial = configuration.copy()
        trial.set_running("d", "node-2")
        assert capped.allows("zzz", "node-2", trial)  # already-used node is free
        assert not capped.allows("zzz", "node-3", trial)
        assert capped.allows("zzz", "node-1", trial)  # outside the watched set

    def test_greedy_filter_ignores_the_probed_vms_own_placement(
        self, configuration
    ):
        # the sole occupant of a watched node may be re-placed onto the
        # other watched node: moving it frees its current one
        capped = MaxOnline(["node-2", "node-3"], 1)
        trial = configuration.copy()
        trial.set_running("d", "node-2")
        assert capped.allows("d", "node-3", trial)


class TestRunningCapacity:
    def test_satisfaction(self, configuration):
        assert RunningCapacity(["node-0"], 2).is_satisfied_by(configuration)
        capped = RunningCapacity(["node-0"], 1)
        assert not capped.is_satisfied_by(configuration)
        assert "2 VMs" in capped.explain(configuration)

    def test_greedy_filter(self, configuration):
        capped = RunningCapacity(["node-0", "node-1"], 3)
        assert not capped.allows("d", "node-0", configuration)
        assert capped.allows("d", "node-2", configuration)

    def test_greedy_filter_allows_replacement_within_the_set(
        self, configuration
    ):
        # a, b, c already run on the watched pair (cap 3): probing one of
        # them onto the other watched node must not count it twice
        capped = RunningCapacity(["node-0", "node-1"], 3)
        assert capped.allows("a", "node-1", configuration)
        # ...but a fourth VM is still rejected
        assert not capped.allows("d", "node-1", configuration)


class TestLonely:
    def test_satisfaction(self, configuration):
        assert Lonely(["a", "b"]).is_satisfied_by(configuration)
        mixed = Lonely(["a"])
        assert not mixed.is_satisfied_by(configuration)  # b shares node-0
        assert "node-0" in mixed.explain(configuration)

    def test_greedy_filter_blocks_both_directions(self, configuration):
        lonely = Lonely(["a", "b", "d"])
        # outsider may not join the group's node
        assert not lonely.allows("c", "node-0", configuration)
        # group member may not join an outsider's node
        assert not lonely.allows("d", "node-1", configuration)
        assert lonely.allows("d", "node-0", configuration)
        assert lonely.allows("c", "node-2", configuration)


class TestRepairHookDefaults:
    def test_default_repair_keeps_the_constraint(self):
        for constraint in (
            Spread(["a", "b"]),
            Gather(["a", "b"]),
            Ban(["a"], ["node-0"]),
            Among(["a"], [["node-0"]]),
            Root(["a"]),
            MaxOnline(["node-0"], 1),
            RunningCapacity(["node-0"], 1),
            Lonely(["a"]),
        ):
            assert constraint.on_node_failure("node-0") is constraint
