"""Every catalog relation compiled into the CP optimizer and honoured
end to end: the produced target (and plan) must pass the independent
checker, for each of the nine constraints."""

from __future__ import annotations

import pytest

from repro.constraints import (
    Among,
    Ban,
    Fence,
    Gather,
    Lonely,
    MaxOnline,
    Root,
    RunningCapacity,
    Spread,
    check_configuration,
    check_plan,
)
from repro.core import ClusterContextSwitch, ContextSwitchOptimizer
from repro.model.configuration import Configuration
from repro.model.errors import PlanningError
from repro.model.node import make_working_nodes
from repro.model.vm import VMState
from repro.testing import make_vm


@pytest.fixture
def configuration():
    configuration = Configuration(
        nodes=make_working_nodes(4, cpu_capacity=2, memory_capacity=4096)
    )
    for name in ("a", "b", "c", "d"):
        configuration.add_vm(make_vm(name, memory=512, cpu=1))
    configuration.set_running("a", "node-0")
    configuration.set_running("b", "node-0")
    configuration.set_running("c", "node-1")
    configuration.set_running("d", "node-1")
    return configuration


def optimize(configuration, constraints, states=None):
    optimizer = ContextSwitchOptimizer(timeout=10)
    result = optimizer.optimize(configuration, states or {}, constraints=constraints)
    # solver/checker agreement on the target and continuous satisfaction of
    # the produced plan (intermediate states included)
    assert check_configuration(result.target, constraints) == []
    assert result.plan.apply().same_assignment(result.target)
    return result


class TestEachRelationIsCompiledAndHonoured:
    def test_spread(self, configuration):
        result = optimize(configuration, [Spread(["a", "b"])])
        assert result.target.location_of("a") != result.target.location_of("b")

    def test_spread_with_collocation_nodes(self, configuration):
        # node-2 tolerates collocation: packing both VMs there stays legal
        # and is cheaper than migrating to two distinct empty nodes... the
        # optimizer may also simply split them; either way the checker must
        # agree with the compiled semantics.
        result = optimize(
            configuration, [Spread(["a", "b"], collocation_nodes=["node-0"])]
        )
        assert result.cost == 0  # staying put is legal thanks to the exception

    def test_gather(self, configuration):
        result = optimize(configuration, [Gather(["a", "c"])])
        assert result.target.location_of("a") == result.target.location_of("c")

    def test_ban(self, configuration):
        result = optimize(configuration, [Ban(["a", "b"], ["node-0"])])
        assert result.target.location_of("a") != "node-0"
        assert result.target.location_of("b") != "node-0"

    def test_fence(self, configuration):
        result = optimize(configuration, [Fence(["c", "d"], ["node-2", "node-3"])])
        assert result.target.location_of("c") in {"node-2", "node-3"}
        assert result.target.location_of("d") in {"node-2", "node-3"}

    def test_among(self, configuration):
        groups = [["node-0", "node-1"], ["node-2", "node-3"]]
        result = optimize(configuration, [Among(["a", "c"], groups)])
        hosts = {
            result.target.location_of("a"),
            result.target.location_of("c"),
        }
        assert any(hosts <= set(group) for group in groups)

    def test_root_pins_running_vms(self, configuration):
        # force an eviction pressure: ban "b" from node-0 while pinning "a";
        # the optimizer must move b, not a
        result = optimize(
            configuration, [Root(["a"]), Ban(["b"], ["node-0"])]
        )
        assert result.target.location_of("a") == "node-0"
        assert result.target.location_of("b") != "node-0"
        assert check_plan(result.plan, [Root(["a"])]) == []

    def test_max_online(self, configuration):
        # only one node of the watched pair may keep hosting: the optimizer
        # must drain either node-0 or node-1 entirely
        constraint = MaxOnline(["node-0", "node-1"], 1)
        result = optimize(configuration, [constraint])
        used = {
            result.target.location_of(name)
            for name in ("a", "b", "c", "d")
            if result.target.location_of(name) in {"node-0", "node-1"}
        }
        assert len(used) <= 1

    def test_running_capacity(self, configuration):
        constraint = RunningCapacity(["node-0", "node-1"], 2)
        result = optimize(configuration, [constraint])
        on_watched = sum(
            1
            for name in ("a", "b", "c", "d")
            if result.target.location_of(name) in {"node-0", "node-1"}
        )
        assert on_watched <= 2

    def test_lonely(self, configuration):
        result = optimize(configuration, [Lonely(["a", "b"])])
        group_nodes = {
            result.target.location_of("a"),
            result.target.location_of("b"),
        }
        other_nodes = {
            result.target.location_of("c"),
            result.target.location_of("d"),
        }
        assert not (group_nodes & other_nodes)


class TestEdgesAndFallbacks:
    def test_constraints_apply_to_vms_entering_the_running_state(
        self, configuration
    ):
        configuration.add_vm(make_vm("fresh", memory=512, cpu=1))
        result = optimize(
            configuration,
            [Fence(["fresh"], ["node-3"])],
            states={"fresh": VMState.RUNNING},
        )
        assert result.target.location_of("fresh") == "node-3"

    def test_unsatisfiable_catalog_raises(self, configuration):
        optimizer = ContextSwitchOptimizer(timeout=2)
        with pytest.raises(PlanningError):
            optimizer.optimize(
                configuration,
                {},
                constraints=[
                    Fence(["a"], ["node-1"]),
                    Ban(["a"], ["node-1"]),
                ],
            )

    def test_facade_carries_constraints(self, configuration):
        switcher = ClusterContextSwitch(optimizer_timeout=10)
        report = switcher.compute(
            configuration, {}, constraints=[Spread(["a", "b"])]
        )
        assert check_configuration(report.target, [Spread(["a", "b"])]) == []

    def test_all_nine_together(self, configuration):
        configuration.add_vm(make_vm("solo", memory=512, cpu=0))
        configuration.set_running("solo", "node-3")
        catalog = [
            Spread(["a", "b"]),
            Gather(["c", "d"]),
            Ban(["a"], ["node-3"]),
            Fence(["b"], ["node-0", "node-1", "node-2"]),
            Among(["c", "d"], [["node-0", "node-1"], ["node-2"]]),
            Root(["c"]),
            MaxOnline(["node-3"], 1),
            RunningCapacity(["node-0", "node-1"], 4),
            Lonely(["solo"]),
        ]
        result = optimize(configuration, catalog)
        assert check_plan(result.plan, catalog) == []
