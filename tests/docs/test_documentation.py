"""The documentation suite is enforced by the tier-1 tests.

Runs the same two passes as ``tools/check_docs.py`` (and the CI ``docs``
job): intra-repo markdown links must resolve, and every doctest embedded in
the ``docs/`` guides must pass.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _load_check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs", module)
    spec.loader.exec_module(module)
    return module


check_docs = _load_check_docs()


def test_documentation_files_exist():
    for name in (
        "SIMULATOR_GUIDE.md",
        "ARCHITECTURE.md",
        "SCENARIOS.md",
        "PERFORMANCE.md",
        "API_REFERENCE.md",
    ):
        assert (REPO_ROOT / "docs" / name).exists(), f"docs/{name} is missing"


def test_no_broken_intra_repo_links():
    assert check_docs.check_links() == []


def test_readme_links_the_scenario_catalog():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "docs/SCENARIOS.md" in readme
    assert "docs/SIMULATOR_GUIDE.md" in readme


def test_guides_have_doctests_and_they_pass():
    files = check_docs.doctest_files()
    names = {path.name for path in files}
    assert "SIMULATOR_GUIDE.md" in names
    assert "PERFORMANCE.md" in names
    assert check_docs.run_doctests() == []


def test_api_reference_covers_every_public_symbol():
    assert check_docs.check_api_reference() == []


def test_api_reference_check_reports_missing_symbols(monkeypatch):
    # the rule must actually bite: an export absent from the reference fails
    import repro.api

    monkeypatch.setattr(
        repro.api, "__all__", [*repro.api.__all__, "NotDocumentedAnywhere"]
    )
    errors = check_docs.check_api_reference()
    assert any("NotDocumentedAnywhere" in error for error in errors)
