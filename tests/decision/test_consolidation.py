"""Tests of the sample dynamic-consolidation decision module."""

import pytest

from repro.decision.consolidation import ConsolidationDecisionModule
from repro.model.configuration import Configuration
from repro.model.node import make_working_nodes
from repro.model.queue import VJobQueue
from repro.model.vjob import VJob, VJobState
from repro.model.vm import VirtualMachine, VMState


def vjob(name, vm_count=2, memory=512, cpu=1, priority=0):
    vms = [
        VirtualMachine(name=f"{name}.vm{i}", memory=memory, cpu_demand=cpu, vjob=name)
        for i in range(vm_count)
    ]
    return VJob(name=name, vms=vms, priority=priority)


@pytest.fixture
def module():
    return ConsolidationDecisionModule(period=30.0)


class TestDecide:
    def test_waiting_vjobs_are_started_when_resources_allow(self, module):
        configuration = Configuration(
            nodes=make_working_nodes(2, cpu_capacity=2, memory_capacity=4096)
        )
        j = vjob("j", vm_count=2)
        for vm in j.vms:
            configuration.add_vm(vm)
        decision = module.decide(configuration, VJobQueue([j]))
        assert decision.vm_states["j.vm0"] is VMState.RUNNING
        assert decision.vjob_states["j"] is VJobState.RUNNING
        assert decision.fallback_target is not None
        assert decision.fallback_target.is_viable()

    def test_overload_leads_to_suspension_of_lowest_priority(self, module):
        configuration = Configuration(
            nodes=make_working_nodes(2, cpu_capacity=1, memory_capacity=4096)
        )
        high = vjob("high", vm_count=2, priority=1)
        low = vjob("low", vm_count=2, priority=2)
        high.run()
        low.run()
        for vm in list(high.vms) + list(low.vms):
            configuration.add_vm(vm)
        configuration.set_running("high.vm0", "node-0")
        configuration.set_running("high.vm1", "node-1")
        configuration.set_running("low.vm0", "node-0")
        configuration.set_running("low.vm1", "node-1")
        decision = module.decide(configuration, VJobQueue([high, low]))
        assert decision.vjob_states["high"] is VJobState.RUNNING
        assert decision.vjob_states["low"] is VJobState.SLEEPING
        assert decision.vm_states["low.vm0"] is VMState.SLEEPING

    def test_terminated_vjob_vms_are_stopped(self, module):
        configuration = Configuration(
            nodes=make_working_nodes(2, cpu_capacity=2, memory_capacity=4096)
        )
        done = vjob("done", vm_count=1)
        done.run()
        for vm in done.vms:
            configuration.add_vm(vm)
        configuration.set_running("done.vm0", "node-0")
        done.terminate()
        decision = module.decide(configuration, VJobQueue([done]))
        assert decision.vm_states["done.vm0"] is VMState.TERMINATED

    def test_noop_decision_when_queue_is_empty(self, module):
        configuration = Configuration(nodes=make_working_nodes(1))
        decision = module.decide(configuration, VJobQueue())
        assert decision.is_noop

    def test_monitoring_demands_are_used(self, module):
        configuration = Configuration(
            nodes=make_working_nodes(1, cpu_capacity=1, memory_capacity=4096)
        )
        j1 = vjob("j1", vm_count=1, cpu=1, priority=1)
        j2 = vjob("j2", vm_count=1, cpu=1, priority=2)
        for vm in list(j1.vms) + list(j2.vms):
            configuration.add_vm(vm)
        demands = {"j1.vm0": 0, "j2.vm0": 0}
        decision = module.decide(configuration, VJobQueue([j1, j2]), demands)
        assert decision.vjob_states["j1"] is VJobState.RUNNING
        assert decision.vjob_states["j2"] is VJobState.RUNNING

    def test_vjob_index_helper(self, module):
        j1, j2 = vjob("a", 1), vjob("b", 2)
        mapping = module.vjob_index(VJobQueue([j1, j2]))
        assert mapping == {"a.vm0": "a", "b.vm0": "b", "b.vm1": "b"}

    def test_period_default_matches_paper(self):
        assert ConsolidationDecisionModule().period == 30.0
