"""Tests of the First-Fit Decreasing heuristic."""

import pytest

from repro.decision.ffd import ffd_order, ffd_place, ffd_target_configuration
from repro.model.configuration import Configuration
from repro.model.node import make_working_nodes
from repro.model.vm import VMState

from repro.testing import make_vm


@pytest.fixture
def configuration():
    return Configuration(nodes=make_working_nodes(3, cpu_capacity=2, memory_capacity=4096))


class TestFFDOrder:
    def test_sorts_by_cpu_then_memory_descending(self):
        vms = [
            make_vm("idle-small", memory=256, cpu=0),
            make_vm("busy-big", memory=2048, cpu=1),
            make_vm("busy-small", memory=512, cpu=1),
        ]
        assert [vm.name for vm in ffd_order(vms)] == [
            "busy-big",
            "busy-small",
            "idle-small",
        ]


class TestFFDPlace:
    def test_places_on_first_fitting_node(self, configuration):
        placement = ffd_place(configuration, [make_vm("a", memory=1024, cpu=1)])
        assert placement == {"a": "node-0"}

    def test_accounts_for_vms_placed_in_same_call(self, configuration):
        vms = [make_vm(f"v{i}", memory=1024, cpu=1) for i in range(4)]
        placement = ffd_place(configuration, vms)
        assert placement is not None
        per_node = {}
        for node in placement.values():
            per_node[node] = per_node.get(node, 0) + 1
        assert all(count <= 2 for count in per_node.values())

    def test_accounts_for_already_running_vms(self, configuration):
        configuration.add_vm(make_vm("resident", memory=4096, cpu=2))
        configuration.set_running("resident", "node-0")
        placement = ffd_place(configuration, [make_vm("a", memory=1024, cpu=1)])
        assert placement == {"a": "node-1"}

    def test_returns_none_when_a_vm_does_not_fit(self, configuration):
        placement = ffd_place(configuration, [make_vm("huge", memory=8192, cpu=1)])
        assert placement is None

    def test_does_not_mutate_the_input_configuration(self, configuration):
        ffd_place(configuration, [make_vm("a", memory=1024, cpu=1)])
        assert "a" not in configuration.vm_names

    def test_respects_node_restriction(self, configuration):
        placement = ffd_place(
            configuration, [make_vm("a", memory=1024, cpu=1)], nodes=["node-2"]
        )
        assert placement == {"a": "node-2"}

    def test_can_replace_existing_running_vm(self, configuration):
        configuration.add_vm(make_vm("mover", memory=1024, cpu=1))
        configuration.set_running("mover", "node-2")
        placement = ffd_place(configuration, [configuration.vm("mover")])
        assert placement == {"mover": "node-0"}


class TestFFDTargetConfiguration:
    def test_repacks_running_vms_from_scratch(self, configuration):
        configuration.add_vm(make_vm("a", memory=1024, cpu=1))
        configuration.add_vm(make_vm("b", memory=1024, cpu=1))
        configuration.set_running("a", "node-2")
        configuration.set_running("b", "node-1")
        target = ffd_target_configuration(
            configuration, {"a": VMState.RUNNING, "b": VMState.RUNNING}
        )
        # FFD packs from scratch: both VMs land on node-0 regardless of their
        # current placement — this is what makes the baseline expensive.
        assert target.location_of("a") == "node-0"
        assert target.location_of("b") == "node-0"

    def test_suspended_vm_keeps_image_on_its_host(self, configuration):
        configuration.add_vm(make_vm("a", memory=1024, cpu=1))
        configuration.set_running("a", "node-1")
        target = ffd_target_configuration(configuration, {"a": VMState.SLEEPING})
        assert target.state_of("a") is VMState.SLEEPING
        assert target.image_location_of("a") == "node-1"

    def test_terminated_and_waiting_states_are_propagated(self, configuration):
        configuration.add_vm(make_vm("a", memory=1024, cpu=1))
        configuration.add_vm(make_vm("b", memory=1024, cpu=1))
        configuration.set_running("a", "node-1")
        target = ffd_target_configuration(
            configuration, {"a": VMState.TERMINATED, "b": VMState.WAITING}
        )
        assert target.state_of("a") is VMState.TERMINATED
        assert target.state_of("b") is VMState.WAITING

    def test_returns_none_when_packing_fails(self, configuration):
        configuration.add_vm(make_vm("huge", memory=8192, cpu=1))
        target = ffd_target_configuration(configuration, {"huge": VMState.RUNNING})
        assert target is None

    def test_target_is_viable(self, configuration):
        for index in range(5):
            configuration.add_vm(make_vm(f"v{index}", memory=1024, cpu=1))
            if index < 3:
                configuration.set_running(f"v{index}", "node-0")  # overload
        states = {f"v{index}": VMState.RUNNING for index in range(5)}
        target = ffd_target_configuration(configuration, states)
        assert target is not None
        assert target.is_viable()
