"""Tests of the Running Job Selection Problem (Section 3.2, Figure 6)."""

import pytest

from repro.decision.rjsp import select_running_vjobs
from repro.model.configuration import Configuration
from repro.model.node import make_working_nodes
from repro.model.queue import VJobQueue
from repro.model.vjob import VJob, VJobState
from repro.model.vm import VirtualMachine, VMState


def vjob(name, vm_count, memory=512, cpu=1, priority=0):
    vms = [
        VirtualMachine(
            name=f"{name}.vm{i}", memory=memory, cpu_demand=cpu, vjob=name
        )
        for i in range(vm_count)
    ]
    return VJob(name=name, vms=vms, priority=priority)


def uniprocessor_cluster(count=3, memory=2048):
    return Configuration(
        nodes=make_working_nodes(count, cpu_capacity=1, memory_capacity=memory)
    )


class TestFigure6Scenario:
    """Three vjobs, three uniprocessor nodes: vjob 1 and 3 fit, vjob 2 must
    sleep."""

    def _scenario(self):
        configuration = uniprocessor_cluster()
        j1 = vjob("vjob1", vm_count=2, cpu=1, priority=1)       # needs 2 CPUs
        j2 = vjob("vjob2", vm_count=2, cpu=1, priority=2)       # needs 2 CPUs
        j3 = vjob("vjob3", vm_count=1, cpu=1, priority=3)       # needs 1 CPU
        j1.run()
        j2.run()
        for vm in list(j1.vms) + list(j2.vms) + list(j3.vms):
            configuration.add_vm(vm)
        configuration.set_running("vjob1.vm0", "node-0")
        configuration.set_running("vjob1.vm1", "node-1")
        configuration.set_running("vjob2.vm0", "node-2")
        configuration.set_running("vjob2.vm1", "node-2")  # overloaded node
        queue = VJobQueue([j1, j2, j3])
        return configuration, queue

    def test_vjob2_is_suspended_and_vjob3_selected(self):
        configuration, queue = self._scenario()
        result = select_running_vjobs(configuration, queue)
        assert result.accepted == ["vjob1", "vjob3"]
        assert result.rejected == ["vjob2"]
        assert result.vjob_states["vjob1"] is VJobState.RUNNING
        assert result.vjob_states["vjob2"] is VJobState.SLEEPING
        assert result.vjob_states["vjob3"] is VJobState.RUNNING

    def test_vm_states_follow_vjob_decision(self):
        configuration, queue = self._scenario()
        result = select_running_vjobs(configuration, queue)
        assert result.vm_states["vjob1.vm0"] is VMState.RUNNING
        assert result.vm_states["vjob2.vm0"] is VMState.SLEEPING
        assert result.vm_states["vjob3.vm0"] is VMState.RUNNING

    def test_trial_placement_only_covers_accepted_vjobs(self):
        configuration, queue = self._scenario()
        result = select_running_vjobs(configuration, queue)
        assert set(result.trial_placement) == {
            "vjob1.vm0",
            "vjob1.vm1",
            "vjob3.vm0",
        }


class TestQueueSemantics:
    def test_priority_order_is_respected(self):
        configuration = uniprocessor_cluster(count=1)
        high = vjob("high", vm_count=1, priority=1)
        low = vjob("low", vm_count=1, priority=2)
        queue = VJobQueue([low, high])
        result = select_running_vjobs(configuration, queue)
        assert result.accepted == ["high"]
        assert result.rejected == ["low"]

    def test_rejected_waiting_vjob_stays_waiting(self):
        configuration = uniprocessor_cluster(count=1)
        running = vjob("running", vm_count=1, priority=1)
        running.run()
        waiting = vjob("waiting", vm_count=1, priority=2)
        for vm in list(running.vms) + list(waiting.vms):
            configuration.add_vm(vm)
        configuration.set_running("running.vm0", "node-0")
        queue = VJobQueue([running, waiting])
        result = select_running_vjobs(configuration, queue)
        assert result.vjob_states["waiting"] is VJobState.WAITING
        assert result.vm_states["waiting.vm0"] is VMState.WAITING

    def test_rejected_sleeping_vjob_stays_sleeping(self):
        configuration = uniprocessor_cluster(count=1)
        runner = vjob("runner", vm_count=1, priority=1)
        runner.run()
        sleeper = vjob("sleeper", vm_count=1, priority=2)
        sleeper.run()
        sleeper.suspend()
        for vm in list(runner.vms) + list(sleeper.vms):
            configuration.add_vm(vm)
        configuration.set_running("runner.vm0", "node-0")
        configuration.set_sleeping("sleeper.vm0", "node-0")
        queue = VJobQueue([runner, sleeper])
        result = select_running_vjobs(configuration, queue)
        assert result.vjob_states["sleeper"] is VJobState.SLEEPING

    def test_terminated_vjobs_are_ignored(self):
        configuration = uniprocessor_cluster()
        done = vjob("done", vm_count=1)
        done.terminate()
        alive = vjob("alive", vm_count=1)
        for vm in list(done.vms) + list(alive.vms):
            configuration.add_vm(vm)
        queue = VJobQueue([done, alive])
        result = select_running_vjobs(configuration, queue)
        assert "done" not in result.vjob_states
        assert result.accepted == ["alive"]

    def test_memory_limits_are_honoured(self):
        configuration = uniprocessor_cluster(count=2, memory=1024)
        fat = vjob("fat", vm_count=2, memory=1024, cpu=0, priority=1)
        thin = vjob("thin", vm_count=1, memory=512, cpu=0, priority=2)
        for vm in list(fat.vms) + list(thin.vms):
            configuration.add_vm(vm)
        queue = VJobQueue([fat, thin])
        result = select_running_vjobs(configuration, queue)
        assert result.accepted == ["fat"]
        assert result.rejected == ["thin"]

    def test_demand_override_changes_the_outcome(self):
        configuration = uniprocessor_cluster(count=1)
        j1 = vjob("j1", vm_count=1, cpu=1, priority=1)
        j2 = vjob("j2", vm_count=1, cpu=1, priority=2)
        for vm in list(j1.vms) + list(j2.vms):
            configuration.add_vm(vm)
        queue = VJobQueue([j1, j2])
        # With fresh monitoring data saying j1's VM is idle, both vjobs fit.
        result = select_running_vjobs(
            configuration, queue, demands={"j1.vm0": 0}
        )
        assert result.accepted == ["j1", "j2"]

    def test_empty_queue(self):
        configuration = uniprocessor_cluster()
        result = select_running_vjobs(configuration, VJobQueue())
        assert result.accepted == [] and result.rejected == []
        assert result.accepted_count == 0
