"""Edge cases of the pluggable decision modules.

The API tests exercise the happy paths; these pin down the corners every
policy must survive without crashing and with sensible decisions:

* an **empty queue** — nothing to decide, the decision is a no-op;
* **all vjobs suspended** — the policies either resume them (capacity
  permitting) or leave them sleeping, but never lose or corrupt state;
* **zero-capacity nodes** — no vjob can be admitted, every policy must
  reject the whole queue instead of dividing by zero or packing onto
  phantom capacity.
"""

from __future__ import annotations

import pytest

from repro.decision import FCFSDecisionModule, FFDDecisionModule, RJSPDecisionModule
from repro.model import Configuration, VJob, VJobQueue, VirtualMachine, make_working_nodes
from repro.model.vjob import VJobState
from repro.model.vm import VMState

MODULES = [FCFSDecisionModule, FFDDecisionModule, RJSPDecisionModule]


def make_cluster(count=2, cpu=2, memory=4096):
    nodes = make_working_nodes(count, cpu_capacity=cpu, memory_capacity=memory)
    return Configuration(nodes=nodes)


def make_vjob(name, vm_count=2, memory=512, cpu=1, priority=0):
    vms = [
        VirtualMachine(f"{name}.vm{i}", memory=memory, cpu_demand=cpu, vjob=name)
        for i in range(vm_count)
    ]
    return VJob(name=name, vms=vms, priority=priority)


class TestEmptyQueue:
    @pytest.mark.parametrize("module_cls", MODULES)
    def test_empty_queue_is_a_noop(self, module_cls):
        configuration = make_cluster()
        decision = module_cls().decide(configuration, VJobQueue())
        assert decision.vm_states == {}
        assert decision.vjob_states == {}
        assert decision.is_noop

    @pytest.mark.parametrize("module_cls", MODULES)
    def test_empty_queue_with_zero_capacity_nodes(self, module_cls):
        configuration = make_cluster(cpu=0, memory=0)
        decision = module_cls().decide(configuration, VJobQueue())
        assert decision.is_noop


class TestAllVJobsSuspended:
    def _suspended_world(self):
        configuration = make_cluster(count=2, cpu=2, memory=4096)
        vjobs = [make_vjob(f"vjob{i}", priority=i) for i in range(2)]
        queue = VJobQueue(vjobs)
        for vjob in vjobs:
            vjob.run()
            vjob.suspend()
            for vm in vjob.vms:
                configuration.add_vm(vm)
                configuration.set_sleeping(vm.name, "node-0")
        return configuration, queue

    @pytest.mark.parametrize("module_cls", [FFDDecisionModule, RJSPDecisionModule])
    def test_suspended_vjobs_resume_when_capacity_allows(self, module_cls):
        configuration, queue = self._suspended_world()
        decision = module_cls().decide(configuration, queue)
        for vjob in queue.pending():
            assert decision.vjob_states[vjob.name] is VJobState.RUNNING
            for vm in vjob.vms:
                assert decision.vm_states[vm.name] is VMState.RUNNING

    def test_fcfs_resumes_suspended_vjobs_when_booking_fits(self):
        configuration, queue = self._suspended_world()
        decision = FCFSDecisionModule().decide(configuration, queue)
        # 2 vjobs x 2 VMs x 1 booked CPU fits the 2x2 CPU cluster exactly.
        for vjob in queue.pending():
            assert decision.vjob_states[vjob.name] is VJobState.RUNNING

    @pytest.mark.parametrize("module_cls", MODULES)
    def test_suspended_vjobs_stay_sleeping_without_capacity(self, module_cls):
        configuration, queue = self._suspended_world()
        starved = Configuration(
            nodes=make_working_nodes(2, cpu_capacity=0, memory_capacity=0)
        )
        for vm in configuration.vms:
            starved.add_vm(vm)
            starved.set_sleeping(vm.name, "node-0")
        decision = module_cls().decide(starved, queue)
        for vjob in queue.pending():
            assert decision.vjob_states[vjob.name] is VJobState.SLEEPING
            for vm in vjob.vms:
                assert decision.vm_states[vm.name] is VMState.SLEEPING


class TestZeroCapacityNodes:
    @pytest.mark.parametrize("module_cls", MODULES)
    def test_waiting_vjobs_are_all_rejected(self, module_cls):
        configuration = make_cluster(cpu=0, memory=0)
        vjobs = [make_vjob(f"vjob{i}", priority=i) for i in range(3)]
        queue = VJobQueue(vjobs)
        for vjob in vjobs:
            for vm in vjob.vms:
                configuration.add_vm(vm)
                configuration.set_waiting(vm.name)
        decision = module_cls().decide(configuration, queue)
        for vjob in vjobs:
            assert decision.vjob_states[vjob.name] is VJobState.WAITING
            for vm in vjob.vms:
                assert decision.vm_states[vm.name] is VMState.WAITING

    @pytest.mark.parametrize("module_cls", MODULES)
    def test_zero_cpu_but_enough_memory_still_rejects(self, module_cls):
        """CPU-starved nodes must reject VMs that demand processing units even
        when the memory dimension would fit."""
        configuration = make_cluster(cpu=0, memory=8192)
        vjob = make_vjob("vjob0", cpu=1)
        queue = VJobQueue([vjob])
        for vm in vjob.vms:
            configuration.add_vm(vm)
            configuration.set_waiting(vm.name)
        decision = module_cls().decide(configuration, queue)
        assert decision.vjob_states["vjob0"] is VJobState.WAITING

    def test_ffd_target_is_none_when_nothing_fits(self):
        configuration = make_cluster(cpu=0, memory=0)
        vjob = make_vjob("vjob0")
        queue = VJobQueue([vjob])
        for vm in vjob.vms:
            configuration.add_vm(vm)
            configuration.set_waiting(vm.name)
        decision = FFDDecisionModule().decide(configuration, queue)
        # Nothing must run, so the from-scratch FFD packing trivially succeeds
        # and produces a target where every VM still waits.
        assert decision.target is not None
        for vm in vjob.vms:
            assert decision.target.state_of(vm.name) is VMState.WAITING

    def test_idle_vjob_is_admitted_on_cpu_starved_nodes(self):
        """A vjob of idle VMs (0 CPU demand) fits a zero-CPU node as long as
        the memory fits — the packing must not reject on equality."""
        configuration = make_cluster(cpu=0, memory=64)
        vms = [VirtualMachine("v.vm0", memory=64, cpu_demand=0, vjob="v")]
        vjob = VJob(name="v", vms=vms)
        queue = VJobQueue([vjob])
        configuration.add_vm(vms[0])
        configuration.set_waiting("v.vm0")
        decision = RJSPDecisionModule().decide(configuration, queue)
        assert decision.vjob_states["v"] is VJobState.RUNNING
