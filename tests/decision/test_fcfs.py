"""Tests of the FCFS + EASY backfilling baseline (Section 2.1, Figure 1)."""

import pytest

from repro.decision.fcfs import BatchJob, FCFSScheduler


class TestBatchJob:
    def test_walltime_defaults_to_duration(self):
        job = BatchJob(name="j", cpus=1, duration=100.0)
        assert job.walltime == 100.0

    def test_explicit_estimate(self):
        job = BatchJob(name="j", cpus=1, duration=100.0, estimated_duration=150.0)
        assert job.walltime == 150.0

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            BatchJob(name="j", cpus=0, duration=10.0)
        with pytest.raises(ValueError):
            BatchJob(name="j", cpus=1, duration=0.0)


class TestSchedulerValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FCFSScheduler(total_cpus=0)
        with pytest.raises(ValueError):
            FCFSScheduler(total_cpus=4, backfilling="magic")

    def test_empty_schedule(self):
        schedule = FCFSScheduler(total_cpus=4).schedule([])
        assert schedule.allocations == []
        assert schedule.makespan == 0.0


class TestFCFSWithoutBackfilling:
    def test_jobs_wait_for_the_queue_head(self):
        """Figure 1(a)/(b): without backfilling, a small job cannot overtake a
        blocked large one."""
        jobs = [
            BatchJob(name="j1", cpus=4, duration=100.0),
            BatchJob(name="j2", cpus=4, duration=100.0),
            BatchJob(name="j3", cpus=1, duration=10.0),
        ]
        schedule = FCFSScheduler(total_cpus=4, backfilling="none").schedule(jobs)
        assert schedule.allocation_of("j1").start == 0.0
        assert schedule.allocation_of("j2").start == 100.0
        assert schedule.allocation_of("j3").start == 200.0

    def test_parallel_start_when_resources_allow(self):
        jobs = [
            BatchJob(name="j1", cpus=2, duration=50.0),
            BatchJob(name="j2", cpus=2, duration=50.0),
        ]
        schedule = FCFSScheduler(total_cpus=4, backfilling="none").schedule(jobs)
        assert schedule.allocation_of("j1").start == 0.0
        assert schedule.allocation_of("j2").start == 0.0


class TestEasyBackfilling:
    def test_small_job_backfills_without_delaying_the_head(self):
        """Figure 1(b): jobs 2 and 3 are backfilled while job 1's reservation
        is preserved."""
        jobs = [
            BatchJob(name="running", cpus=3, duration=100.0),
            BatchJob(name="head", cpus=4, duration=100.0),
            BatchJob(name="filler", cpus=1, duration=50.0),
        ]
        schedule = FCFSScheduler(total_cpus=4, backfilling="easy").schedule(jobs)
        assert schedule.allocation_of("running").start == 0.0
        # head must wait for the 3-cpu job to finish
        assert schedule.allocation_of("head").start == 100.0
        # the filler fits in the hole and finishes before the reservation
        assert schedule.allocation_of("filler").start == 0.0

    def test_backfill_does_not_delay_the_reservation(self):
        jobs = [
            BatchJob(name="running", cpus=3, duration=100.0),
            BatchJob(name="head", cpus=4, duration=100.0),
            BatchJob(name="too-long", cpus=1, duration=300.0),
        ]
        schedule = FCFSScheduler(total_cpus=4, backfilling="easy").schedule(jobs)
        # the long narrow job would delay the head (it needs the head's CPU),
        # so it cannot be backfilled.
        assert schedule.allocation_of("head").start == 100.0
        assert schedule.allocation_of("too-long").start >= 100.0

    def test_backfill_on_spare_cpus_may_exceed_shadow_time(self):
        """A job that only uses CPUs left spare at the shadow time can run past
        the reservation."""
        jobs = [
            BatchJob(name="running", cpus=2, duration=100.0),
            BatchJob(name="head", cpus=3, duration=100.0),
            BatchJob(name="long-narrow", cpus=1, duration=500.0),
        ]
        schedule = FCFSScheduler(total_cpus=4, backfilling="easy").schedule(jobs)
        assert schedule.allocation_of("head").start == 100.0
        assert schedule.allocation_of("long-narrow").start == 0.0

    def test_makespan_improves_over_plain_fcfs(self):
        jobs = [
            BatchJob(name="a", cpus=4, duration=100.0),
            BatchJob(name="b", cpus=3, duration=100.0),
            BatchJob(name="c", cpus=1, duration=100.0),
        ]
        plain = FCFSScheduler(total_cpus=4, backfilling="none").schedule(jobs)
        easy = FCFSScheduler(total_cpus=4, backfilling="easy").schedule(jobs)
        assert easy.makespan <= plain.makespan

    def test_memory_dimension_blocks_backfill(self):
        jobs = [
            BatchJob(name="running", cpus=1, duration=100.0, memory=3000),
            BatchJob(name="head", cpus=4, duration=50.0, memory=1000),
            BatchJob(name="hungry", cpus=1, duration=10.0, memory=2000),
        ]
        schedule = FCFSScheduler(
            total_cpus=4, total_memory=4096, backfilling="easy"
        ).schedule(jobs)
        assert schedule.allocation_of("hungry").start >= 100.0


class TestSubmissionTimes:
    def test_jobs_cannot_start_before_submission(self):
        jobs = [
            BatchJob(name="early", cpus=1, duration=10.0, submit_time=0.0),
            BatchJob(name="late", cpus=1, duration=10.0, submit_time=500.0),
        ]
        schedule = FCFSScheduler(total_cpus=4).schedule(jobs)
        assert schedule.allocation_of("late").start == 500.0

    def test_wait_time(self):
        jobs = [
            BatchJob(name="first", cpus=4, duration=100.0),
            BatchJob(name="second", cpus=4, duration=10.0),
        ]
        schedule = FCFSScheduler(total_cpus=4).schedule(jobs)
        assert schedule.allocation_of("second").wait_time == 100.0


class TestScheduleViews:
    def test_usage_and_utilization_series(self):
        jobs = [
            BatchJob(name="a", cpus=2, duration=100.0, memory=1024),
            BatchJob(name="b", cpus=2, duration=50.0, memory=2048),
        ]
        schedule = FCFSScheduler(total_cpus=4, total_memory=8192).schedule(jobs)
        assert schedule.cpu_usage_at(25.0) == 4
        assert schedule.cpu_usage_at(75.0) == 2
        assert schedule.memory_usage_at(25.0) == 3072
        series = schedule.utilization_series(step=50.0)
        assert series[0][1] == 1.0  # both jobs running at t=0
        assert schedule.makespan == 100.0

    def test_allocation_of_unknown_job_raises(self):
        schedule = FCFSScheduler(total_cpus=4).schedule(
            [BatchJob(name="a", cpus=1, duration=1.0)]
        )
        with pytest.raises(KeyError):
            schedule.allocation_of("ghost")
