"""Root-level assumptions and pinned (unary-domain) variables.

The repair engine warm-starts a solve by freezing clean VMs: either as
``pinned_var`` unary variables built into the model, or as root ``assumptions``
applied before the initial propagation.  Both must behave like ordinary
assignments — propagate, participate in constraints — and an impossible
assumption must yield a graceful infeasible result, never an exception.
"""

import pytest

from repro.cp import (
    AllDifferent,
    ElementSum,
    LinearLessEqual,
    Model,
    Solver,
    make_pinned_var,
)
from repro.cp.variables import make_int_var
from repro.model.errors import SolverError


class TestPinnedVariables:
    def test_make_pinned_var_has_a_unary_domain(self):
        var = make_pinned_var("x", 7)
        assert var.is_instantiated
        assert var.value == 7
        assert var.values() == (7,)

    def test_model_pinned_var_registers_like_int_var(self):
        model = Model()
        pinned = model.pinned_var("x", 3)
        assert pinned.value == 3
        with pytest.raises(SolverError):
            model.int_var("x", [0, 1])  # same namespace as int_var

    def test_pinned_var_participates_in_constraints(self):
        model = Model()
        pinned = model.pinned_var("x", 1)
        free = model.int_var("y", [0, 1, 2])
        model.add_constraint(AllDifferent([pinned, free]))
        cost = model.int_var("cost", range(0, 6))
        model.add_constraint(ElementSum([free], [{0: 5, 1: 0, 2: 3}], cost))
        result = Solver(model).solve(minimize=cost)
        assert result.has_solution
        assert result.best["x"] == 1
        # y in {0, 2} after AllDifferent; costs 5 and 3 -> optimum picks y=2
        assert result.best["y"] == 2
        assert result.best.objective == 3

    def test_contradictory_pins_are_infeasible_not_an_error(self):
        model = Model()
        a = model.pinned_var("a", 1)
        b = model.pinned_var("b", 1)
        model.add_constraint(AllDifferent([a, b]))
        result = Solver(model).solve()
        assert not result.has_solution


class TestAssumptions:
    def _model(self):
        model = Model()
        x = model.int_var("x", [0, 1])
        y = model.int_var("y", [0, 1])
        model.add_constraint(AllDifferent([x, y]))
        return model, x, y

    def test_assumption_forces_the_assignment(self):
        model, x, _y = self._model()
        result = Solver(model).solve(assumptions={x: 0})
        assert result.has_solution
        assert result.best["x"] == 0
        assert result.best["y"] == 1

    def test_out_of_domain_assumption_is_infeasible(self):
        model, x, _y = self._model()
        result = Solver(model).solve(assumptions={x: 5})
        assert not result.has_solution

    def test_conflicting_assumptions_are_infeasible(self):
        model, x, y = self._model()
        result = Solver(model).solve(assumptions={x: 1, y: 1})
        assert not result.has_solution

    def test_assumptions_restrict_the_optimum_to_the_subproblem(self):
        model = Model()
        x = model.int_var("x", [0, 1])
        cost = model.int_var("cost", range(0, 11))
        model.add_constraint(ElementSum([x], [{0: 10, 1: 0}], cost))
        free = Solver(model).solve(minimize=cost)
        assert free.best.objective == 0

        model2 = Model()
        x2 = model2.int_var("x", [0, 1])
        cost2 = model2.int_var("cost", range(0, 11))
        model2.add_constraint(ElementSum([x2], [{0: 10, 1: 0}], cost2))
        assumed = Solver(model2).solve(minimize=cost2, assumptions={x2: 0})
        assert assumed.has_solution
        assert assumed.best["x"] == 0
        # the optimum of the *assumed* subproblem, worse than the free one
        assert assumed.best.objective == 10

    def test_assumption_on_constrained_capacity(self):
        # pinning one consumer onto a full bin must fail the packing
        model = Model()
        x = model.int_var("x", [0, 1])
        y = model.int_var("y", [0])
        model.add_constraint(LinearLessEqual([x, y], [1, 1], 0))
        result = Solver(model).solve(assumptions={x: 1})
        assert not result.has_solution
        unconstrained = Solver(Model()).solve()
        assert unconstrained.has_solution  # empty model sanity
