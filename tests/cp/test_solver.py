"""Tests of the search: satisfaction, branch-and-bound, heuristics, timeout."""

import pytest

from repro.cp import (
    ActivityLastConflict,
    AllDifferent,
    ElementSum,
    LinearLessEqual,
    Model,
    Solver,
    VectorPacking,
    first_fail,
    make_int_var,
    prefer_value,
    static_order,
)
from repro.cp.variables import value_of
from repro.model.errors import SolverError


class TestModel:
    def test_duplicate_variable_names_rejected(self):
        model = Model()
        model.int_var("x", [0, 1])
        with pytest.raises(SolverError):
            model.int_var("x", [0, 1])

    def test_make_int_var_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            make_int_var("x", 5, 3)

    def test_value_of_helper(self):
        model = Model()
        x = model.int_var("x", [3])
        y = model.int_var("y", [1, 2])
        assert value_of(x) == 3
        assert value_of(y) is None
        assert value_of(y, default=-1) == -1


class TestSatisfaction:
    def test_trivial_problem(self):
        model = Model()
        model.int_var("x", [4])
        result = Solver(model).solve()
        assert result.has_solution
        assert result.best["x"] == 4

    def test_unsatisfiable_problem(self):
        model = Model()
        x = model.int_var("x", [0, 1])
        y = model.int_var("y", [0, 1])
        model.add_constraint(AllDifferent([x, y]))
        model.add_constraint(LinearLessEqual([x, y], [1, 1], 0))
        result = Solver(model).solve()
        assert not result.has_solution

    def test_solution_limit(self):
        model = Model()
        model.int_var("x", range(5))
        result = Solver(model).solve(solution_limit=1, collect_all=True)
        assert len(result.all_solutions) == 1

    def test_statistics_are_populated(self):
        model = Model()
        variables = [model.int_var(f"v{i}", range(3)) for i in range(3)]
        model.add_constraint(AllDifferent(variables))
        result = Solver(model).solve()
        stats = result.statistics
        assert stats.nodes > 0
        assert stats.solutions >= 1
        assert stats.elapsed >= 0.0


class TestMinimization:
    def _packing_model(self):
        """Two items, two bins, cheaper to keep item0 on bin0."""
        model = Model()
        x0 = model.int_var("x0", [0, 1])
        x1 = model.int_var("x1", [0, 1])
        total = model.int_var("total", range(0, 50))
        model.add_constraint(
            VectorPacking([x0, x1], [(1, 10), (1, 10)], [(1, 20), (1, 20)])
        )
        model.add_constraint(
            ElementSum([x0, x1], [{0: 0, 1: 10}, {0: 10, 1: 0}], total)
        )
        return model, total

    def test_optimum_found_and_proved(self):
        model, total = self._packing_model()
        result = Solver(model).solve(minimize=total)
        assert result.best.objective == 0
        assert result.best["x0"] == 0 and result.best["x1"] == 1
        assert result.statistics.proven_optimal

    def test_first_solution_only_mode(self):
        model, total = self._packing_model()
        result = Solver(model).solve(minimize=total, first_solution_only=True)
        assert result.has_solution
        # the first solution is not necessarily the optimum, but it is valid
        assert result.best.objective in (0, 10, 20)

    def test_collect_all_reports_improving_solutions(self):
        model, total = self._packing_model()
        result = Solver(model).solve(minimize=total, collect_all=True)
        objectives = [s.objective for s in result.all_solutions]
        assert objectives == sorted(objectives, reverse=True) or len(objectives) == 1
        assert objectives[-1] == 0

    def test_initial_bound_filters_worse_solutions(self):
        model, total = self._packing_model()
        result = Solver(model).solve(minimize=total, initial_bound=0)
        # nothing is strictly better than 0, so the search returns no solution
        assert not result.has_solution
        assert result.statistics.proven_optimal

    def test_initial_bound_allows_improvement(self):
        model, total = self._packing_model()
        result = Solver(model).solve(minimize=total, initial_bound=5)
        assert result.best.objective == 0

    def test_timeout_returns_best_so_far(self):
        model = Model()
        variables = [model.int_var(f"v{i}", range(8)) for i in range(8)]
        total = model.int_var("total", range(0, 100))
        model.add_constraint(AllDifferent(variables))
        model.add_constraint(
            ElementSum(variables, [{v: v for v in range(8)}] * 8, total)
        )
        result = Solver(model).solve(minimize=total, timeout=0.0)
        assert result.statistics.timed_out
        assert not result.statistics.proven_optimal


class TestHeuristics:
    def test_first_fail_picks_smallest_domain(self):
        a = make_int_var("a", 0, 9)
        b = make_int_var("b", 0, 1)
        assert first_fail([a, b]) is b

    def test_first_fail_with_all_instantiated(self):
        a = make_int_var("a", 1, 1)
        assert first_fail([a]) is None

    def test_static_order_respects_order(self):
        a = make_int_var("a", 0, 3)
        b = make_int_var("b", 0, 3)
        selector = static_order([b, a])
        assert selector([a, b]) is b

    def test_prefer_value_puts_preference_first(self):
        a = make_int_var("a", 0, 3)
        selector = prefer_value({"a": 2})
        assert list(selector(a))[0] == 2

    def test_prefer_value_ignores_pruned_preference(self):
        a = make_int_var("a", 0, 3)
        a.domain.remove(2)
        selector = prefer_value({"a": 2})
        assert 2 not in selector(a)

    def test_activity_last_conflict_prefers_conflict_variable(self):
        a = make_int_var("a", 0, 3)
        b = make_int_var("b", 0, 3)
        selector = ActivityLastConflict(static_order([a, b]))
        assert selector([a, b]) is a
        selector.on_failure(b)
        assert selector([a, b]) is b
        b.domain.assign(1)
        # instantiated conflict variable: fall back to the primary order
        assert selector([a, b]) is a

    def test_activity_last_conflict_reset(self):
        a = make_int_var("a", 0, 3)
        b = make_int_var("b", 0, 3)
        selector = ActivityLastConflict(static_order([a, b]))
        selector.on_failure(b)
        selector.reset()
        assert selector([a, b]) is a

    def test_activity_fallback_picks_highest_activity_density(self):
        a = make_int_var("a", 0, 3)
        b = make_int_var("b", 0, 1)
        a.activity = 1.0
        b.activity = 4.0
        selector = ActivityLastConflict()
        assert selector([a, b]) is b


class TestEngines:
    def _model(self):
        model = Model()
        x0 = model.int_var("x0", [0, 1])
        x1 = model.int_var("x1", [0, 1])
        total = model.interval_var("total", 0, 40)
        model.add_constraint(
            VectorPacking([x0, x1], [(1, 10), (1, 10)], [(1, 20), (1, 20)])
        )
        model.add_constraint(
            ElementSum([x0, x1], [{0: 0, 1: 10}, {0: 10, 1: 0}], total)
        )
        return model, total

    def test_unknown_engine_rejected(self):
        model, _ = self._model()
        with pytest.raises(SolverError):
            Solver(model, engine="quantum")

    @pytest.mark.parametrize("engine", ["event", "fixpoint"])
    def test_both_engines_find_the_proven_optimum(self, engine):
        model, total = self._model()
        result = Solver(model, engine=engine).solve(minimize=total)
        assert result.best.objective == 0
        assert result.statistics.proven_optimal

    def test_event_engine_counts_propagations_and_events(self):
        model, total = self._model()
        result = Solver(model, engine="event").solve(minimize=total)
        assert result.statistics.propagations > 0
        assert result.statistics.events > 0

    def test_node_limit_caps_search_without_proof(self):
        model = Model()
        variables = [model.int_var(f"v{i}", range(8)) for i in range(8)]
        total = model.interval_var("total", 0, 100)
        model.add_constraint(AllDifferent(variables))
        model.add_constraint(
            ElementSum(variables, [{v: v for v in range(8)}] * 8, total)
        )
        result = Solver(model).solve(minimize=total, node_limit=3)
        assert result.statistics.limit_reached
        assert not result.statistics.proven_optimal
        assert result.statistics.nodes == 3

    def test_domains_restored_when_a_propagator_raises(self):
        """Non-InconsistencyError exceptions must unwind the whole trail."""
        model = Model()
        x = model.int_var("x", [0, 2])
        y = model.interval_var("y", 0, 4)
        # AllDifferent over an interval variable triggers an interior removal
        # (removing 2 from [0..4]), which IntervalDomain rejects.
        model.add_constraint(AllDifferent([x, y]))
        solver = Solver(model)
        with pytest.raises(ValueError):
            solver.solve()
        assert x.values() == (0, 2)
        assert y.min == 0 and y.max == 4

    def test_interval_objective_matches_sparse_objective(self):
        sparse = Model()
        xs = [sparse.int_var(f"x{i}", [0, 1]) for i in range(3)]
        total_sparse = sparse.int_var("total", range(0, 31))
        sparse.add_constraint(
            ElementSum(xs, [{0: 3, 1: 7}, {0: 5, 1: 1}, {0: 2, 1: 9}], total_sparse)
        )
        dense = Model()
        ys = [dense.int_var(f"x{i}", [0, 1]) for i in range(3)]
        total_dense = dense.interval_var("total", 0, 30)
        dense.add_constraint(
            ElementSum(ys, [{0: 3, 1: 7}, {0: 5, 1: 1}, {0: 2, 1: 9}], total_dense)
        )
        a = Solver(sparse).solve(minimize=total_sparse)
        b = Solver(dense).solve(minimize=total_dense)
        assert a.best.objective == b.best.objective == 6
