"""Tests of finite integer domains (sparse-set and interval representations)."""

import pytest

from repro.cp.domain import Domain, IntervalDomain
from repro.model.errors import InconsistencyError


class TestConstruction:
    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            Domain([])

    def test_duplicates_collapse(self):
        assert len(Domain([1, 1, 2])) == 2

    def test_min_max(self):
        domain = Domain([5, 1, 9])
        assert domain.min == 1 and domain.max == 9

    def test_iteration_is_sorted(self):
        assert list(Domain([3, 1, 2])) == [1, 2, 3]

    def test_values_and_raw_values(self):
        domain = Domain([3, 1])
        assert domain.values() == (1, 3)
        assert set(domain.raw_values()) == {1, 3}


class TestMutations:
    def test_remove_returns_removed_count(self):
        domain = Domain([1, 2, 3])
        assert domain.remove(2) == 1
        assert 2 not in domain

    def test_remove_absent_value_is_noop(self):
        domain = Domain([1, 2])
        assert domain.remove(9) == 0
        assert len(domain) == 2

    def test_remove_last_value_raises(self):
        with pytest.raises(InconsistencyError):
            Domain([1]).remove(1)

    def test_remove_many(self):
        domain = Domain(range(5))
        assert domain.remove_many([0, 1, 7]) == 2
        assert domain.values() == (2, 3, 4)

    def test_remove_many_emptying_raises(self):
        with pytest.raises(InconsistencyError):
            Domain([1, 2]).remove_many([1, 2])

    def test_assign(self):
        domain = Domain([1, 2, 3])
        assert domain.assign(2) == 2
        assert domain.is_singleton and domain.value == 2

    def test_assign_missing_value_raises(self):
        with pytest.raises(InconsistencyError):
            Domain([1, 2]).assign(7)

    def test_remove_above_and_below(self):
        domain = Domain(range(10))
        domain.remove_above(6)
        domain.remove_below(3)
        assert domain.values() == (3, 4, 5, 6)

    def test_min_max_track_removals(self):
        domain = Domain(range(10))
        domain.remove(0)
        domain.remove(9)
        assert domain.min == 1 and domain.max == 8

    def test_value_of_non_singleton_raises(self):
        with pytest.raises(ValueError):
            Domain([1, 2]).value

    def test_copy_is_independent(self):
        domain = Domain([1, 2, 3])
        clone = domain.copy()
        clone.remove(1)
        assert 1 in domain and 1 not in clone


class TestTrailSupport:
    """mark()/restore_to() back the solver trail with O(1) state restores."""

    def test_restore_brings_removed_values_back(self):
        domain = Domain([1, 2, 3, 4])
        token = domain.mark()
        domain.remove(2)
        domain.remove_many([1, 4])
        domain.restore_to(token)
        assert domain.values() == (1, 2, 3, 4)

    def test_restore_after_assign(self):
        domain = Domain([1, 2, 3])
        token = domain.mark()
        domain.assign(3)
        domain.restore_to(token)
        assert domain.values() == (1, 2, 3)

    def test_nested_marks_restore_in_reverse_order(self):
        domain = Domain(range(6))
        outer = domain.mark()
        domain.remove(0)
        inner = domain.mark()
        domain.remove_many([1, 2])
        domain.restore_to(inner)
        assert domain.values() == (1, 2, 3, 4, 5)
        domain.restore_to(outer)
        assert domain.values() == (0, 1, 2, 3, 4, 5)


class TestIntervalDomain:
    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            IntervalDomain(5, 3)

    def test_queries(self):
        domain = IntervalDomain(2, 5)
        assert len(domain) == 4
        assert domain.min == 2 and domain.max == 5
        assert 3 in domain and 6 not in domain
        assert domain.values() == (2, 3, 4, 5)

    def test_bound_tightening(self):
        domain = IntervalDomain(0, 100)
        assert domain.remove_above(10) == 90
        assert domain.remove_below(5) == 5
        assert domain.values() == (5, 6, 7, 8, 9, 10)

    def test_bound_tightening_noop(self):
        domain = IntervalDomain(0, 10)
        assert domain.remove_above(10) == 0
        assert domain.remove_below(0) == 0

    def test_emptying_bounds_raise(self):
        with pytest.raises(InconsistencyError):
            IntervalDomain(5, 10).remove_above(4)
        with pytest.raises(InconsistencyError):
            IntervalDomain(5, 10).remove_below(11)

    def test_assign_and_singleton(self):
        domain = IntervalDomain(0, 9)
        assert domain.assign(4) == 9
        assert domain.is_singleton and domain.value == 4
        with pytest.raises(InconsistencyError):
            IntervalDomain(0, 3).assign(7)

    def test_edge_removal_and_interior_rejection(self):
        domain = IntervalDomain(0, 5)
        assert domain.remove(0) == 1
        assert domain.remove(5) == 1
        assert domain.min == 1 and domain.max == 4
        with pytest.raises(ValueError):
            domain.remove(2)

    def test_remove_many_peels_both_edges(self):
        domain = IntervalDomain(0, 9)
        assert domain.remove_many([0, 1, 9, 12]) == 3
        assert domain.min == 2 and domain.max == 8

    def test_remove_many_interior_is_atomic(self):
        """An inexpressible batch must raise before any mutation."""
        domain = IntervalDomain(0, 9)
        with pytest.raises(ValueError):
            domain.remove_many([0, 1, 5])
        assert domain.min == 0 and domain.max == 9

    def test_remove_many_emptying_raises(self):
        with pytest.raises(InconsistencyError):
            IntervalDomain(0, 2).remove_many([0, 1, 2])

    def test_mark_restore(self):
        domain = IntervalDomain(0, 100)
        token = domain.mark()
        domain.remove_above(10)
        domain.remove_below(5)
        domain.restore_to(token)
        assert domain.min == 0 and domain.max == 100
