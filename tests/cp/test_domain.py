"""Tests of finite integer domains."""

import pytest

from repro.cp.domain import Domain
from repro.model.errors import InconsistencyError


class TestConstruction:
    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            Domain([])

    def test_duplicates_collapse(self):
        assert len(Domain([1, 1, 2])) == 2

    def test_min_max(self):
        domain = Domain([5, 1, 9])
        assert domain.min == 1 and domain.max == 9

    def test_iteration_is_sorted(self):
        assert list(Domain([3, 1, 2])) == [1, 2, 3]

    def test_values_and_raw_values(self):
        domain = Domain([3, 1])
        assert domain.values() == (1, 3)
        assert domain.raw_values() == frozenset({1, 3})


class TestMutations:
    def test_remove_returns_removed_set(self):
        domain = Domain([1, 2, 3])
        assert domain.remove(2) == frozenset({2})
        assert 2 not in domain

    def test_remove_absent_value_is_noop(self):
        domain = Domain([1, 2])
        assert domain.remove(9) == frozenset()
        assert len(domain) == 2

    def test_remove_last_value_raises(self):
        with pytest.raises(InconsistencyError):
            Domain([1]).remove(1)

    def test_remove_many(self):
        domain = Domain(range(5))
        removed = domain.remove_many([0, 1, 7])
        assert removed == frozenset({0, 1})
        assert domain.values() == (2, 3, 4)

    def test_remove_many_emptying_raises(self):
        with pytest.raises(InconsistencyError):
            Domain([1, 2]).remove_many([1, 2])

    def test_assign(self):
        domain = Domain([1, 2, 3])
        removed = domain.assign(2)
        assert removed == frozenset({1, 3})
        assert domain.is_singleton and domain.value == 2

    def test_assign_missing_value_raises(self):
        with pytest.raises(InconsistencyError):
            Domain([1, 2]).assign(7)

    def test_remove_above_and_below(self):
        domain = Domain(range(10))
        domain.remove_above(6)
        domain.remove_below(3)
        assert domain.values() == (3, 4, 5, 6)

    def test_restore_puts_values_back(self):
        domain = Domain([1, 2, 3])
        removed = domain.remove_many([1, 2])
        domain.restore(removed)
        assert domain.values() == (1, 2, 3)

    def test_value_of_non_singleton_raises(self):
        with pytest.raises(ValueError):
            Domain([1, 2]).value

    def test_copy_is_independent(self):
        domain = Domain([1, 2, 3])
        clone = domain.copy()
        clone.remove(1)
        assert 1 in domain and 1 not in clone
