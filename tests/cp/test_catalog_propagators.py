"""Tests of the propagators backing the placement-constraint catalog.

Each propagator (NotEqual, AllDifferentExcept, Among, UsedValuesAtMost,
CountInValuesAtMost, DisjointValues) is checked by *exhaustive enumeration*:
the solver's full solution set — under both the event-driven and the
naive-fixpoint engines — must equal the brute-forced set of satisfying
assignments.  This pins both soundness (no spurious solution) and
completeness (no pruned solution) of the propagation.

The ElementSum/VectorPacking empty-variable-list guards (degenerate models
that constraint compilation can now emit) are covered at the bottom.
"""

from __future__ import annotations

import itertools

import pytest

from repro.cp import (
    Among,
    AllDifferentExcept,
    CountInValuesAtMost,
    DisjointValues,
    ElementSum,
    ENGINES,
    Model,
    NotEqual,
    Solver,
    UsedValuesAtMost,
    VectorPacking,
)
from repro.model.errors import InconsistencyError


def solve_all(build, engine):
    """All solutions of the model built by ``build(model) -> (vars, constraint)``."""
    model = Model()
    variables, constraint = build(model)
    model.add_constraint(constraint)
    result = Solver(model, engine=engine).solve(collect_all=True)
    return {
        tuple(solution[var.name] for var in variables)
        for solution in result.all_solutions
    }


def brute_force(domains, predicate):
    return {
        assignment
        for assignment in itertools.product(*domains)
        if predicate(assignment)
    }


@pytest.mark.parametrize("engine", ENGINES)
class TestCatalogPropagators:
    def test_not_equal(self, engine):
        domains = [(0, 1, 2), (1, 2)]

        def build(model):
            a = model.int_var("a", domains[0])
            b = model.int_var("b", domains[1])
            return [a, b], NotEqual(a, b)

        expected = brute_force(domains, lambda s: s[0] != s[1])
        assert solve_all(build, engine) == expected

    def test_not_equal_detects_forced_conflict(self, engine):
        def build(model):
            a = model.int_var("a", [1])
            b = model.int_var("b", [1])
            return [a, b], NotEqual(a, b)

        assert solve_all(build, engine) == set()

    def test_all_different_except(self, engine):
        domains = [(0, 1, 2)] * 3
        exceptions = {2}

        def build(model):
            variables = [
                model.int_var(f"x{i}", domain)
                for i, domain in enumerate(domains)
            ]
            return variables, AllDifferentExcept(variables, exceptions)

        def ok(solution):
            hard = [v for v in solution if v not in exceptions]
            return len(hard) == len(set(hard))

        expected = brute_force(domains, ok)
        assert solve_all(build, engine) == expected

    def test_among(self, engine):
        domains = [(0, 1, 2, 3)] * 3
        groups = [{0, 1}, {2, 3}]

        def build(model):
            variables = [
                model.int_var(f"x{i}", domain)
                for i, domain in enumerate(domains)
            ]
            return variables, Among(variables, groups)

        expected = brute_force(
            domains, lambda s: any(set(s) <= group for group in groups)
        )
        assert solve_all(build, engine) == expected

    def test_among_rejects_empty_groups(self, engine):
        with pytest.raises(ValueError):
            Among([], [])
        with pytest.raises(ValueError):
            Among([], [set()])

    def test_used_values_at_most(self, engine):
        domains = [(0, 1, 2)] * 3
        watched = {0, 1}

        def build(model):
            variables = [
                model.int_var(f"x{i}", domain)
                for i, domain in enumerate(domains)
            ]
            return variables, UsedValuesAtMost(variables, watched, 1)

        expected = brute_force(
            domains, lambda s: len({v for v in s if v in watched}) <= 1
        )
        assert solve_all(build, engine) == expected

    def test_count_in_values_at_most(self, engine):
        domains = [(0, 1, 2)] * 3
        watched = {0, 1}

        def build(model):
            variables = [
                model.int_var(f"x{i}", domain)
                for i, domain in enumerate(domains)
            ]
            return variables, CountInValuesAtMost(variables, watched, 2)

        expected = brute_force(
            domains, lambda s: sum(1 for v in s if v in watched) <= 2
        )
        assert solve_all(build, engine) == expected

    def test_disjoint_values(self, engine):
        domains = [(0, 1), (0, 1, 2), (1, 2)]

        def build(model):
            left = [model.int_var("l0", domains[0])]
            right = [
                model.int_var("r0", domains[1]),
                model.int_var("r1", domains[2]),
            ]
            return [*left, *right], DisjointValues(left, right)

        expected = brute_force(
            domains, lambda s: not ({s[0]} & {s[1], s[2]})
        )
        assert solve_all(build, engine) == expected

    def test_is_satisfied_mirrors_propagation(self, engine):
        # every accepted solution must also pass the instantiated check
        domains = [(0, 1, 2)] * 3

        def build(model):
            variables = [
                model.int_var(f"x{i}", domain)
                for i, domain in enumerate(domains)
            ]
            return variables, UsedValuesAtMost(variables, {0, 1, 2}, 2)

        model = Model()
        variables, constraint = build(model)
        model.add_constraint(constraint)
        result = Solver(model, engine=engine).solve(collect_all=True)
        assert result.all_solutions
        # the solver leaves the domains restored; re-check each solution by
        # re-instantiating through a fresh throwaway model
        for solution in result.all_solutions:
            values = [solution[var.name] for var in variables]
            check = Model()
            check_vars = [
                check.int_var(f"x{i}", [value]) for i, value in enumerate(values)
            ]
            assert UsedValuesAtMost(check_vars, {0, 1, 2}, 2).is_satisfied()


@pytest.mark.parametrize("engine", ENGINES)
class TestDegenerateModels:
    """Constraint compilation can emit trivial models (nothing to place);
    the workhorse propagators must guard the empty-variable-list path."""

    def test_element_sum_with_no_variables_pins_total_to_zero(self, engine):
        model = Model()
        total = model.interval_var("total", 0, 7)
        model.add_constraint(ElementSum([], [], total))
        result = Solver(model, engine=engine).solve(minimize=total)
        assert result.best is not None
        assert result.best["total"] == 0

    def test_element_sum_with_no_variables_fails_without_zero(self, engine):
        model = Model()
        total = model.interval_var("total", 3, 7)
        model.add_constraint(ElementSum([], [], total))
        result = Solver(model, engine=engine).solve()
        assert result.best is None

    def test_vector_packing_with_no_items_is_a_noop(self, engine):
        model = Model()
        other = model.int_var("other", [0, 1])
        model.add_constraint(VectorPacking([], [], [(2, 2048), (2, 2048)]))
        result = Solver(model, engine=engine).solve(collect_all=True)
        assert {s["other"] for s in result.all_solutions} == {0, 1}

    def test_vector_packing_empty_is_satisfied(self, engine):
        assert VectorPacking([], [], [(1, 1024)]).is_satisfied()

    def test_element_sum_empty_is_satisfied_at_zero(self, engine):
        model = Model()
        total = model.int_var("total", [0])
        constraint = ElementSum([], [], total)
        assert constraint.is_satisfied()
