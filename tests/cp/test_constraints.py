"""Tests of the constraint propagators."""

import pytest

from repro.cp import (
    AllDifferent,
    ElementSum,
    IntVar,
    LinearLessEqual,
    Model,
    Solver,
    VectorPacking,
    make_int_var,
)
from repro.cp.constraints import AllEqual
from repro.model.errors import InconsistencyError


class _RecordingStore:
    """Minimal store for exercising propagators in isolation."""

    def remove(self, var, value):
        var.domain.remove(value)

    def remove_many(self, var, values):
        var.domain.remove_many(values)

    def remove_above(self, var, bound):
        var.domain.remove_above(bound)

    def remove_below(self, var, bound):
        var.domain.remove_below(bound)

    def assign(self, var, value):
        var.domain.assign(value)


@pytest.fixture
def store():
    return _RecordingStore()


class TestLinearLessEqual:
    def test_prunes_upper_bounds(self, store):
        x = make_int_var("x", 0, 10)
        y = make_int_var("y", 0, 10)
        constraint = LinearLessEqual([x, y], [2, 3], 12)
        constraint.propagate(store)
        assert x.max == 6 and y.max == 4

    def test_detects_violation(self, store):
        x = make_int_var("x", 5, 10)
        y = make_int_var("y", 5, 10)
        constraint = LinearLessEqual([x, y], [1, 1], 8)
        with pytest.raises(InconsistencyError):
            constraint.propagate(store)

    def test_is_satisfied(self):
        x, y = IntVar("x", [2]), IntVar("y", [3])
        assert LinearLessEqual([x, y], [1, 2], 8).is_satisfied()
        assert not LinearLessEqual([x, y], [1, 2], 7).is_satisfied()

    def test_rejects_negative_coefficients(self):
        with pytest.raises(ValueError):
            LinearLessEqual([make_int_var("x", 0, 1)], [-1], 0)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            LinearLessEqual([make_int_var("x", 0, 1)], [1, 2], 5)


class TestElementSum:
    def test_total_bounds_are_tightened(self, store):
        x = IntVar("x", [0, 1])
        y = IntVar("y", [0, 1])
        total = make_int_var("total", 0, 100)
        tables = [{0: 0, 1: 10}, {0: 5, 1: 20}]
        ElementSum([x, y], tables, total).propagate(store)
        assert total.min == 5 and total.max == 30

    def test_expensive_values_are_pruned(self, store):
        x = IntVar("x", [0, 1])
        y = IntVar("y", [0, 1])
        total = make_int_var("total", 0, 12)
        tables = [{0: 0, 1: 10}, {0: 5, 1: 20}]
        ElementSum([x, y], tables, total).propagate(store)
        # y = 1 would cost at least 0 + 20 > 12
        assert y.values() == (0,)

    def test_inconsistent_bounds_raise(self, store):
        x = IntVar("x", [1])
        total = make_int_var("total", 0, 5)
        with pytest.raises(InconsistencyError):
            ElementSum([x], [{1: 50}], total).propagate(store)

    def test_is_satisfied(self):
        x = IntVar("x", [1])
        total = IntVar("total", [7])
        assert ElementSum([x], [{1: 7}], total).is_satisfied()

    def test_requires_one_table_per_variable(self):
        with pytest.raises(ValueError):
            ElementSum([IntVar("x", [0])], [], IntVar("t", [0]))


class TestVectorPacking:
    def test_overload_detected(self, store):
        x = IntVar("x", [0])
        y = IntVar("y", [0])
        constraint = VectorPacking([x, y], [(1, 512), (1, 512)], [(1, 2048)])
        with pytest.raises(InconsistencyError):
            constraint.propagate(store)

    def test_prunes_nodes_without_room(self, store):
        placed = IntVar("placed", [0])
        free = IntVar("free", [0, 1])
        constraint = VectorPacking(
            [placed, free], [(1, 1024), (1, 1024)], [(1, 2048), (2, 2048)]
        )
        constraint.propagate(store)
        # node 0 has its only CPU taken by `placed`
        assert free.values() == (1,)

    def test_memory_dimension_pruned_too(self, store):
        placed = IntVar("placed", [0])
        big = IntVar("big", [0, 1])
        constraint = VectorPacking(
            [placed, big], [(0, 3000), (0, 2000)], [(2, 4096), (2, 4096)]
        )
        constraint.propagate(store)
        assert big.values() == (1,)

    def test_is_satisfied(self):
        x, y = IntVar("x", [0]), IntVar("y", [1])
        constraint = VectorPacking([x, y], [(1, 1024), (1, 1024)], [(1, 2048), (1, 2048)])
        assert constraint.is_satisfied()

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            VectorPacking([IntVar("x", [0])], [], [(1, 1)])


class TestAllEqual:
    def test_domains_reduced_to_common_values(self, store):
        x = IntVar("x", [0, 1, 2])
        y = IntVar("y", [1, 2, 3])
        AllEqual([x, y]).propagate(store)
        assert x.values() == (1, 2)
        assert y.values() == (1, 2)

    def test_disjoint_domains_raise(self, store):
        x, y = IntVar("x", [0]), IntVar("y", [1])
        with pytest.raises(InconsistencyError):
            AllEqual([x, y]).propagate(store)

    def test_is_satisfied(self):
        assert AllEqual([IntVar("x", [2]), IntVar("y", [2])]).is_satisfied()
        assert not AllEqual([IntVar("x", [1]), IntVar("y", [2])]).is_satisfied()

    def test_solver_integration(self):
        model = Model()
        x = model.int_var("x", [0, 1, 2])
        y = model.int_var("y", [2, 3])
        model.add_constraint(AllEqual([x, y]))
        result = Solver(model).solve()
        assert result.best["x"] == result.best["y"] == 2


class TestAllDifferent:
    def test_assigned_value_removed_from_others(self, store):
        x = IntVar("x", [1])
        y = IntVar("y", [1, 2])
        AllDifferent([x, y]).propagate(store)
        assert y.values() == (2,)

    def test_conflict_detected(self, store):
        x, y = IntVar("x", [1]), IntVar("y", [1])
        with pytest.raises(InconsistencyError):
            AllDifferent([x, y]).propagate(store)

    def test_solver_integration(self):
        model = Model()
        variables = [model.int_var(f"v{i}", range(3)) for i in range(3)]
        model.add_constraint(AllDifferent(variables))
        result = Solver(model).solve()
        assert result.has_solution
        values = [result.best[f"v{i}"] for i in range(3)]
        assert sorted(values) == [0, 1, 2]
