"""The stdlib Prometheus layer: counters, gauges, histograms, text I/O."""

import math

import pytest

from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)


def test_counter_counts_and_rejects_decrements():
    counter = Counter("repro_test_total", "Test counter.")
    counter.inc()
    counter.inc(2.0)
    assert counter.value() == 3.0
    with pytest.raises(ValueError):
        counter.inc(-1.0)


def test_counter_labels_are_independent_series():
    counter = Counter("repro_faults_total", "Faults.")
    counter.inc(kind="node_crash")
    counter.inc(kind="node_crash")
    counter.inc(kind="node_slowdown")
    assert counter.value(kind="node_crash") == 2.0
    assert counter.value(kind="node_slowdown") == 1.0
    assert counter.total == 3.0


def test_idle_counter_still_renders_a_zero_sample():
    counter = Counter("repro_idle_total", "Never fired.")
    assert "repro_idle_total 0" in counter.render()


def test_gauge_goes_up_and_down():
    gauge = Gauge("repro_vms", "VMs.")
    gauge.set(10)
    gauge.inc(-3)
    assert gauge.value() == 7.0


def test_histogram_buckets_are_cumulative():
    histogram = Histogram("repro_latency_seconds", "Latency.", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        histogram.observe(value)
    lines = histogram.render()
    assert 'repro_latency_seconds_bucket{le="0.1"} 1' in lines
    assert 'repro_latency_seconds_bucket{le="1"} 2' in lines
    assert 'repro_latency_seconds_bucket{le="+Inf"} 3' in lines
    assert "repro_latency_seconds_count 3" in lines
    assert histogram.sum == pytest.approx(5.55)


def test_histogram_rejects_duplicate_buckets():
    with pytest.raises(ValueError):
        Histogram("repro_bad_seconds", "Bad.", buckets=(1.0, 1.0))


def test_registry_rejects_duplicate_names():
    registry = MetricsRegistry()
    registry.counter("repro_x_total", "X.")
    with pytest.raises(ValueError):
        registry.counter("repro_x_total", "Again.")


def test_invalid_metric_name_is_rejected():
    with pytest.raises(ValueError):
        Counter("0bad name", "Nope.")


def test_render_parses_back_losslessly():
    registry = MetricsRegistry()
    faults = registry.counter("repro_faults_total", "Faults applied.")
    faults.inc(kind="node_crash")
    gauge = registry.gauge("repro_simulated_time_seconds", "Sim time.")
    gauge.set(120.5)
    histogram = registry.histogram(
        "repro_round_latency_seconds", "Round latency.", buckets=(0.1, 1.0)
    )
    histogram.observe(0.25)

    series = parse_prometheus_text(registry.render())
    assert series["repro_faults_total"] == [({"kind": "node_crash"}, 1.0)]
    assert series["repro_simulated_time_seconds"] == [({}, 120.5)]
    buckets = dict(
        (labels["le"], value)
        for labels, value in series["repro_round_latency_seconds_bucket"]
    )
    assert buckets == {"0.1": 0.0, "1": 1.0, "+Inf": 1.0}
    assert series["repro_round_latency_seconds_count"] == [({}, 1.0)]


def test_parser_handles_inf_and_escaped_labels():
    text = (
        "# HELP x_total Help.\n"
        "# TYPE x_total counter\n"
        'x_total{path="a\\"b\\\\c"} +Inf\n'
    )
    series = parse_prometheus_text(text)
    ((labels, value),) = series["x_total"]
    assert labels == {"path": 'a"b\\c'}
    assert value == math.inf


@pytest.mark.parametrize(
    "document",
    [
        "garbage line\n",
        "# TYPE x_total counter\nx_total not-a-number\n",
        "undeclared_total 1\n",
        "# TYPE x_total counter gauge extra\n",
    ],
)
def test_parser_rejects_malformed_documents(document):
    with pytest.raises(ValueError):
        parse_prometheus_text(document)
