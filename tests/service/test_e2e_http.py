"""End-to-end acceptance: the canonical chaos scenario driven over HTTP.

The seeded crash-at-120 s-under-churn scenario of
``tests/integration/test_chaos_golden.py`` is executed twice:

* **in process** — the usual ``Scenario(...).run()``;
* **over HTTP** — a daemon starts from an *empty* workload set, the five
  churn vjobs and the node-1 crash are posted through
  :class:`repro.service.OperatorClient`, then ``POST /run`` drives the loop.

Commands posted before the run drain at the first iteration boundary
(simulated t = 0) with their original submission times intact, so both runs
must produce the byte-identical :class:`RunResult`.  The test then checks
the operator-facing surfaces against that result: ``/metrics`` parses as
valid Prometheus text and agrees with the counters, and replaying the
audit-log JSONL reconstructs the executed plan sequence byte-for-byte.
"""

import json

import pytest

from repro import FaultSchedule, Scenario
from repro.service import OperatorClient, parse_prometheus_text
from repro.service.audit import AuditLog, replay_plans
from repro.workloads import ChurnGenerator, ProblemClass, heterogeneous_nodes

OPTIMIZER_TIMEOUT_S = 30.0


def churn_workloads():
    generator = ChurnGenerator(
        seed=11,
        mean_interarrival_s=45.0,
        vm_count_choices=(2, 3),
        problem_classes=(ProblemClass.W,),
    )
    return generator.workloads(5)


def chaos_scenario(workloads, faults):
    return Scenario(
        nodes=heterogeneous_nodes(5, seed=7),
        workloads=workloads,
        policy="consolidation",
        optimizer_timeout=OPTIMIZER_TIMEOUT_S,
        faults=faults,
        sla_factor=6.0,
    )


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    in_process = chaos_scenario(
        churn_workloads(), FaultSchedule().node_crash("node-1", at=120.0)
    ).run()

    audit_path = tmp_path_factory.mktemp("service") / "audit.jsonl"
    # Same fleet and knobs, but no workloads and no fault schedule: all of
    # the work arrives over the wire.
    daemon = chaos_scenario([], None).serve(port=0, audit_path=str(audit_path))
    with daemon:
        client = OperatorClient(daemon.url, timeout=30.0)
        for workload in churn_workloads():
            client.submit_vjob(workload)
        client.inject_fault(
            {"kind": "node_crash", "target": "node-1", "at": 120.0}
        )
        client.start_run()
        assert client.wait(timeout=600.0) == "completed"
        over_http = client.result()
        yield {
            "in_process": in_process,
            "over_http": over_http,
            "client": client,
            "audit_path": audit_path,
        }


def test_http_run_reproduces_the_in_process_result(runs):
    canonical = json.dumps(runs["in_process"].to_dict(), sort_keys=True)
    observed = json.dumps(runs["over_http"].to_dict(), sort_keys=True)
    assert observed == canonical


def test_no_operator_command_failed(runs):
    commands = runs["client"].commands()
    assert commands["errors"] == []
    assert len(commands["applied"]) == 6  # 5 vjobs + 1 fault


def test_metrics_parse_and_agree_with_the_result(runs):
    result = runs["over_http"]
    series = parse_prometheus_text(runs["client"].metrics_text())

    faults = {
        labels["kind"]: value for labels, value in series["repro_faults_total"]
    }
    assert faults == {"node_crash": float(len(result.faults))}
    completed = sum(v for _, v in series["repro_vjobs_completed_total"])
    assert completed == len(result.completion_times)
    switches = sum(v for _, v in series["repro_context_switches_total"])
    assert switches == len(result.switches)
    cost = sum(v for _, v in series["repro_switch_cost_total"])
    assert cost == result.total_switch_cost
    repairs = sum(v for _, v in series["repro_repairs_total"])
    assert repairs == len(result.repair_latencies)
    lost = sum(v for _, v in series["repro_lost_vjobs_total"])
    assert lost == result.lost_vjob_count
    assert series["repro_round_latency_seconds_count"][0][1] == len(
        result.utilization
    )


def test_audit_replay_reconstructs_plans_byte_for_byte(runs):
    live_plans = runs["client"].plans()
    replayed = replay_plans(AuditLog.load(runs["audit_path"]))
    assert json.dumps(replayed, sort_keys=True) == json.dumps(
        live_plans, sort_keys=True
    )
    assert len(replayed) == len(runs["over_http"].switches)


def test_plan_serialization_matches_the_audit_shape(runs):
    # Rebuilding any audited plan through the serializer round-trips.
    from repro.service.serialize import action_from_dict, action_to_dict

    for plan in runs["client"].plans():
        for pool in plan["pools"]:
            for action in pool:
                assert action_to_dict(action_from_dict(action)) == action


def test_telemetry_matches_the_utilization_series(runs):
    telemetry = runs["client"].telemetry()
    result = runs["over_http"]
    assert telemetry["total"] == len(result.utilization)
    assert [s["time"] for s in telemetry["samples"]] == [
        u.time for u in result.utilization
    ]


def _span_shape(node):
    """Span tree with timestamps erased — comparable across runs."""
    return (
        node["name"],
        sorted(node.get("attributes", {}).items()),
        sorted(node.get("counters", {}).items()),
        [event["name"] for event in node.get("events", [])],
        [_span_shape(child) for child in node.get("children", [])],
    )


def test_trace_endpoint_serves_the_run_trace():
    # A dedicated traced pair: the shared ``runs`` fixture must stay
    # untraced so that the byte-compare above keeps holding across
    # independent runs (span timestamps are wall-clock).
    in_process_scenario = chaos_scenario(
        churn_workloads(), FaultSchedule().node_crash("node-1", at=120.0)
    )
    in_process_scenario.trace = True
    in_process = in_process_scenario.run()

    daemon_scenario = chaos_scenario([], None)
    daemon_scenario.trace = True
    with daemon_scenario.serve(port=0) as daemon:
        client = OperatorClient(daemon.url, timeout=30.0)
        for workload in churn_workloads():
            client.submit_vjob(workload)
        client.inject_fault(
            {"kind": "node_crash", "target": "node-1", "at": 120.0}
        )
        client.start_run()
        assert client.wait(timeout=600.0) == "completed"
        payload = client.trace()
        result = client.result()

    assert payload["state"] == "completed"
    # Same run: the endpoint returns exactly the trace the result carries.
    assert payload["trace"] == result.trace
    # Different run, same seeds: identical span tree modulo timestamps.
    assert _span_shape(payload["trace"]["root"]) == _span_shape(
        in_process.trace["root"]
    )
    # Every HTTP request the daemon served was traced too.
    requests = payload["requests"]
    assert requests
    for request_span in requests:
        assert request_span["name"] == "request"
        attributes = request_span["attributes"]
        assert attributes["method"] in {"GET", "POST"}
        assert attributes["path"].startswith("/")
        assert attributes["status"] in {200, 202}
    assert any(
        r["attributes"]["path"] == "/run" and r["attributes"]["method"] == "POST"
        for r in requests
    )
