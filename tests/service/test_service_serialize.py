"""JSON codecs: actions, plans, workloads, fault events."""

import json

import pytest

from repro.core.actions import Migrate, Resume, Run, Stop, Suspend
from repro.service.serialize import (
    action_from_dict,
    action_to_dict,
    fault_event_from_dict,
    fault_event_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from repro.sim.faults import FaultEvent, FaultKind
from repro.testing import make_workload


@pytest.mark.parametrize(
    "action",
    [
        Run(vm="a.vm0", node="node-0"),
        Stop(vm="a.vm0", node="node-0"),
        Suspend(vm="a.vm0", node="node-1"),
        Migrate(vm="a.vm0", source_node="node-0", destination_node="node-1"),
        Resume(vm="a.vm0", image_node="node-0", destination_node="node-2"),
    ],
)
def test_action_round_trip(action):
    assert action_from_dict(action_to_dict(action)) == action


def test_action_from_dict_rejects_unknown_kind():
    with pytest.raises(ValueError):
        action_from_dict({"kind": "teleport", "vm": "a.vm0"})


def test_action_from_dict_reports_missing_fields():
    with pytest.raises(ValueError) as excinfo:
        action_from_dict({"kind": "migrate", "vm": "a.vm0", "source": "n0"})
    assert "destination" in str(excinfo.value)


def test_workload_full_form_round_trips():
    workload = make_workload("job-a", vm_count=3, duration=120.0, memory=1024)
    payload = json.loads(json.dumps(workload_to_dict(workload)))
    rebuilt = workload_from_dict(payload)
    assert rebuilt.vjob.name == "job-a"
    assert [vm.name for vm in rebuilt.vjob.vms] == [
        vm.name for vm in workload.vjob.vms
    ]
    assert workload_to_dict(rebuilt) == workload_to_dict(workload)


def test_workload_simple_spec_builds_constant_demand_vms():
    workload = workload_from_dict(
        {"name": "quick", "vm_count": 2, "memory": 256, "duration": 60.0, "cpu": 1}
    )
    assert [vm.name for vm in workload.vjob.vms] == ["quick.vm0", "quick.vm1"]
    trace = workload.traces["quick.vm0"]
    assert trace.total_duration == 60.0


def test_workload_simple_spec_validates():
    with pytest.raises(ValueError):
        workload_from_dict({"name": "bad", "vm_count": 0})
    with pytest.raises(ValueError):
        workload_from_dict({"name": "bad", "duration": -1.0})
    with pytest.raises(ValueError):
        workload_from_dict({"vm_count": 2})


def test_workload_full_form_validates_traces():
    workload = make_workload("job-a", vm_count=1)
    payload = workload_to_dict(workload)
    payload["traces"]["job-a.vm0"] = [[60.0]]  # not a pair
    with pytest.raises(ValueError):
        workload_from_dict(payload)


@pytest.mark.parametrize(
    "event",
    [
        FaultEvent(time=120.0, kind=FaultKind.NODE_CRASH, target="node-1"),
        FaultEvent(
            time=60.0,
            kind=FaultKind.NODE_SLOWDOWN,
            target="node-2",
            factor=3.0,
            duration=90.0,
        ),
        FaultEvent(time=0.0, kind=FaultKind.MIGRATION_FAILURE, target="a.vm0"),
    ],
)
def test_fault_event_round_trip(event):
    rebuilt = fault_event_from_dict(fault_event_to_dict(event))
    assert rebuilt.kind == event.kind
    assert rebuilt.target == event.target
    assert rebuilt.time == event.time


def test_fault_event_unknown_kind_lists_the_valid_ones():
    with pytest.raises(ValueError) as excinfo:
        fault_event_from_dict({"kind": "meteor", "target": "node-0"})
    assert "node_crash" in str(excinfo.value)
