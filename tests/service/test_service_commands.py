"""The loop command queue: mid-run vjob submission and fault injection."""

import pytest

from repro.api.scenario import Scenario
from repro.model.node import make_working_nodes
from repro.service.commands import LoopCommandQueue
from repro.sim.faults import FaultEvent, FaultKind, FaultSchedule
from repro.testing import make_workload


def fast_scenario(**overrides):
    defaults = dict(
        nodes=make_working_nodes(4),
        workloads=[make_workload("base", vm_count=2, duration=120.0)],
        optimizer_timeout=2.0,
        use_optimizer=False,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


def test_queued_workload_is_submitted_and_completes():
    queue = LoopCommandQueue()
    queue.submit_workload(make_workload("late", vm_count=2, duration=60.0))
    result = fast_scenario().build(command_queue=queue).run()
    assert result.completed("base")
    assert result.completed("late")
    assert queue.applied == ["submit_vjob:late"]
    assert queue.errors == []
    assert queue.pending == 0


def test_queued_fault_fires_during_the_run():
    queue = LoopCommandQueue()
    queue.inject_fault(
        FaultEvent(time=30.0, kind=FaultKind.NODE_CRASH, target="node-3")
    )
    scenario = fast_scenario(faults=FaultSchedule())
    result = scenario.build(command_queue=queue).run()
    assert [(f.kind, f.target) for f in result.faults] == [
        ("node_crash", "node-3")
    ]
    assert result.completed("base")


def test_duplicate_vjob_is_recorded_as_error_not_crash():
    queue = LoopCommandQueue()
    queue.submit_workload(make_workload("base", vm_count=2, duration=60.0))
    result = fast_scenario().build(command_queue=queue).run()
    assert result.completed("base")
    assert queue.applied == []
    (label, error) = queue.errors[0]
    assert label == "submit_vjob:base"
    assert "already submitted" in error


def test_fault_without_injector_is_recorded_as_error():
    queue = LoopCommandQueue()
    queue.inject_fault(
        FaultEvent(time=30.0, kind=FaultKind.NODE_CRASH, target="node-0")
    )
    # No FaultSchedule attached: the loop has no injector.
    result = fast_scenario().build(command_queue=queue).run()
    assert result.faults == []
    (label, error) = queue.errors[0]
    assert label.startswith("inject_fault:")
    assert "no fault injector" in error


def test_delayed_boot_injection_is_rejected():
    queue = LoopCommandQueue()
    queue.inject_fault(
        FaultEvent(time=30.0, kind=FaultKind.DELAYED_BOOT, target="node-1")
    )
    fast_scenario(faults=FaultSchedule()).build(command_queue=queue).run()
    (label, error) = queue.errors[0]
    assert "delayed_boot" in error


def test_generic_call_runs_at_the_boundary():
    queue = LoopCommandQueue()
    seen = []
    queue.call(lambda loop, now: seen.append(now), label="probe")
    fast_scenario().build(command_queue=queue).run()
    assert seen == [0.0]
    assert "probe" in queue.applied


def test_past_fault_time_is_clamped_to_now():
    # A fault stamped in the simulated past must not crash the engine: it
    # fires at the next boundary instead.
    queue = LoopCommandQueue()
    queue.inject_fault(
        FaultEvent(time=0.0, kind=FaultKind.NODE_CRASH, target="node-3")
    )
    result = (
        fast_scenario(faults=FaultSchedule())
        .build(command_queue=queue)
        .run()
    )
    assert len(result.faults) == 1
    assert result.faults[0].detected_at >= 0.0
