"""The append-only audit log and its byte-for-byte plan replay."""

import json

from repro.service.audit import AuditLog, replay_plans


def test_entries_are_sequenced_and_filterable():
    log = AuditLog()
    log.append("run_start", 0.0, policy="consolidation")
    log.append("plan", 0.0, plan={"pools": [], "action_count": 0})
    log.append("plan", 30.0, plan={"pools": [], "action_count": 0})
    assert [e["seq"] for e in log.entries()] == [0, 1, 2]
    assert len(log.of_kind("plan")) == 2
    assert log.entries(offset=1, limit=1)[0]["kind"] == "plan"
    assert len(log) == 3


def test_jsonl_mirror_round_trips(tmp_path):
    path = tmp_path / "audit" / "run.jsonl"
    log = AuditLog(path=path)
    log.append("run_start", 0.0, policy="consolidation")
    log.append("fault", 120.0, fault_kind="node_crash", target="node-1")
    loaded = AuditLog.load(path)
    assert loaded == log.entries()
    # The file is canonical JSONL: one sort_keys object per line.
    lines = path.read_text().splitlines()
    assert lines == [json.dumps(e, sort_keys=True) for e in log.entries()]


def test_load_stops_at_a_malformed_line(tmp_path):
    path = tmp_path / "run.jsonl"
    good = json.dumps({"seq": 0, "kind": "run_start", "time": 0.0})
    path.write_text(good + "\n{truncated\n" + good + "\n")
    assert AuditLog.load(path) == [json.loads(good)]


def test_load_missing_file_is_empty(tmp_path):
    assert AuditLog.load(tmp_path / "absent.jsonl") == []


def test_replay_plans_reproduces_the_sequence_byte_for_byte(tmp_path):
    path = tmp_path / "run.jsonl"
    log = AuditLog(path=path)
    plans = [
        {"pools": [[{"kind": "run", "vm": "a.vm0", "node": "node-0"}]],
         "action_count": 1},
        {"pools": [[{"kind": "migrate", "vm": "a.vm0", "source": "node-0",
                     "destination": "node-1"}]], "action_count": 1},
    ]
    log.append("run_start", 0.0)
    for index, plan in enumerate(plans):
        log.append("plan", 30.0 * index, plan=plan)
    log.append("run_end", 60.0)

    for source in (log, path, log.entries()):
        replayed = replay_plans(source)
        assert [json.dumps(p, sort_keys=True) for p in replayed] == [
            json.dumps(p, sort_keys=True) for p in plans
        ]
