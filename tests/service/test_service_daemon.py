"""HTTP behaviour of the operator daemon (fast heuristic scenarios)."""

import json
import urllib.request

import pytest

from repro.api.scenario import Scenario
from repro.model.node import make_working_nodes
from repro.service import OperatorClient, ServiceError, parse_prometheus_text
from repro.testing import make_workload


@pytest.fixture
def daemon():
    scenario = Scenario(
        nodes=make_working_nodes(4),
        workloads=[make_workload("base", vm_count=2, duration=120.0)],
        optimizer_timeout=2.0,
        use_optimizer=False,
    )
    with scenario.serve(port=0) as running:
        yield running


@pytest.fixture
def client(daemon):
    return OperatorClient(daemon.url, timeout=10.0)


def test_healthz_and_idle_state(client):
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["state"] == "idle"
    assert client.configuration()["configuration"] is None


def test_unknown_path_is_404(client):
    with pytest.raises(ServiceError) as excinfo:
        client._get_json("/nope")
    assert excinfo.value.status == 404


def test_malformed_json_body_is_400(daemon):
    request = urllib.request.Request(
        daemon.url + "/vjobs",
        data=b"{not json",
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=10.0)
    assert excinfo.value.code == 400


def test_invalid_vjob_spec_is_400(client):
    with pytest.raises(ServiceError) as excinfo:
        client.submit_vjob({"vm_count": 2})  # no name
    assert excinfo.value.status == 400
    assert "name" in excinfo.value.message


def test_invalid_fault_kind_is_400(client):
    with pytest.raises(ServiceError) as excinfo:
        client.inject_fault({"kind": "meteor_strike", "target": "node-0"})
    assert excinfo.value.status == 400
    assert "meteor_strike" in excinfo.value.message


def test_result_is_404_before_completion(client):
    with pytest.raises(ServiceError) as excinfo:
        client.result()
    assert excinfo.value.status == 404


def test_run_completes_and_serves_everything(client):
    client.submit_vjob({"name": "extra", "vm_count": 2, "duration": 60.0})
    client.start_run()
    assert client.wait(timeout=120.0) == "completed"

    result = client.result()
    assert result.completed("base")
    assert result.completed("extra")

    # /metrics parses as Prometheus text and agrees with the result.
    series = parse_prometheus_text(client.metrics_text())
    completed = sum(v for _, v in series["repro_vjobs_completed_total"])
    assert completed == len(result.completion_times)
    # the final round observes, sees everything terminated and breaks
    # before sampling — so rounds lead the utilization series by one
    rounds = sum(v for _, v in series["repro_loop_rounds_total"])
    assert rounds == len(result.utilization) + 1
    assert series["repro_round_latency_seconds_count"][0][1] == len(
        result.utilization
    )

    # telemetry mirrors the utilization series
    telemetry = client.telemetry()
    assert telemetry["total"] == len(result.utilization)
    assert [s["time"] for s in telemetry["samples"]] == [
        u.time for u in result.utilization
    ]

    # audit: one plan entry per executed switch, ends with run_end
    plans = client.plans()
    assert len(plans) == len(result.switches)
    kinds = [entry["kind"] for entry in client.audit()]
    assert kinds[0] == "run_start"
    assert kinds[-1] == "run_end"

    # final configuration is observable
    configuration = client.configuration()["configuration"]
    assert configuration["viable"] is True

    # applied operator commands are reported
    assert "submit_vjob:extra" in client.commands()["applied"]


def test_second_run_is_409(client):
    client.start_run()
    client.wait(timeout=120.0)
    with pytest.raises(ServiceError) as excinfo:
        client.start_run()
    assert excinfo.value.status == 409


def test_campaign_over_http(client, tmp_path):
    store = tmp_path / "campaign.jsonl"
    launched = client.start_campaign(
        {
            "factory": "default",
            "policies": ["consolidation"],
            "fleet_sizes": [3],
            "seeds": [0],
            "executor": "serial",
            "store_path": str(store),
        }
    )
    status = client.wait_campaign(launched["id"], timeout=120.0)
    assert status["status"] == "completed"
    assert status["completed"] == status["total"] == 1
    assert len(status["aggregate"]) == 1
    # the store is resumable JSONL
    record = json.loads(store.read_text().splitlines()[0])
    assert record["policy"] == "consolidation"

    # relaunching against the same store resumes instead of re-running
    relaunched = client.start_campaign(
        {
            "factory": "default",
            "policies": ["consolidation"],
            "fleet_sizes": [3],
            "seeds": [0],
            "executor": "serial",
            "store_path": str(store),
        }
    )
    resumed = client.wait_campaign(relaunched["id"], timeout=60.0)
    assert resumed["status"] == "completed"
    assert resumed["resumed"] == 1


def test_unknown_campaign_factory_is_400(client):
    with pytest.raises(ServiceError) as excinfo:
        client.start_campaign(
            {"factory": "nope", "policies": ["consolidation"], "fleet_sizes": [2]}
        )
    assert excinfo.value.status == 400


def test_unknown_campaign_id_is_404(client):
    with pytest.raises(ServiceError) as excinfo:
        client.campaign("campaign-999")
    assert excinfo.value.status == 404
