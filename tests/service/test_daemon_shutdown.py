"""Daemon shutdown must wind down an in-flight run, not abandon it.

Regression: ``OperatorDaemon.close()`` used to stop only the HTTP server; a
mid-run partitioned/repair loop kept running on its daemon thread and its
worker-process pool leaked past the daemon's lifetime.  ``close()`` now asks
the loop to stop at the next iteration boundary, joins the run thread and
closes the loop."""

import time

from repro.api.scenario import Scenario
from repro.model.node import make_working_nodes
from repro.testing import make_workload


def _long_scenario(engine="partitioned", **kwargs):
    return Scenario(
        nodes=make_working_nodes(6),
        workloads=[
            make_workload(f"job-{i}", vm_count=2, duration=1e6)
            for i in range(3)
        ],
        policy="consolidation",
        engine=engine,
        optimizer_timeout=1.0,
        max_time=1e8,
        **kwargs,
    )


def _wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


class TestDaemonShutdownMidRun:
    def test_close_stops_the_loop_and_releases_the_pool(self):
        daemon = _long_scenario(engine="partitioned", max_workers=2).serve(
            port=0, autostart=True
        )
        daemon.start_run()
        assert _wait_for(lambda: daemon._loop is not None)
        daemon.close()
        # the run thread terminated and the loop's planning engine was
        # released — no worker-process pool survives the daemon
        assert not daemon._run_thread.is_alive()
        assert daemon.state in ("completed", "failed")
        optimizer = daemon._loop.switcher.optimizer
        assert getattr(optimizer, "_pool", None) is None
        result = daemon.result
        assert result is not None
        assert result.metadata.get("stopped_early") is True

    def test_close_stops_a_repair_partitioned_run(self):
        daemon = _long_scenario(engine="repair-partitioned").serve(
            port=0, autostart=True
        )
        daemon.start_run()
        assert _wait_for(lambda: daemon._loop is not None)
        daemon.close()
        assert not daemon._run_thread.is_alive()
        # the repair wrapper forwards close() to the partitioned inner
        inner = daemon._loop.switcher.optimizer.inner
        assert getattr(inner, "_pool", None) is None

    def test_close_without_a_run_is_still_idempotent(self):
        daemon = _long_scenario().serve(port=0, autostart=True)
        daemon.close()
        daemon.close()
        assert daemon.state == "idle"

    def test_close_racing_the_build_still_stops_the_run(self):
        daemon = _long_scenario().serve(port=0, autostart=True)
        daemon.start_run()
        # close immediately: whichever side wins the race, the run thread
        # must terminate and never leak its loop
        daemon.close()
        assert _wait_for(lambda: not daemon._run_thread.is_alive())
        assert daemon.state in ("completed", "failed")
