"""The bounded telemetry ring buffer."""

from repro.service.telemetry import TelemetryBuffer


def test_append_and_snapshot_oldest_first():
    buffer = TelemetryBuffer(capacity=4)
    for index in range(3):
        buffer.append({"time": float(index)})
    assert [s["time"] for s in buffer.snapshot()] == [0.0, 1.0, 2.0]
    assert buffer.total == 3
    assert buffer.dropped == 0


def test_capacity_drops_oldest_samples():
    buffer = TelemetryBuffer(capacity=2)
    for index in range(5):
        buffer.append({"time": float(index)})
    assert [s["time"] for s in buffer.snapshot()] == [3.0, 4.0]
    assert buffer.total == 5
    assert buffer.dropped == 3
    assert len(buffer) == 2


def test_snapshot_limit_returns_most_recent():
    buffer = TelemetryBuffer(capacity=10)
    for index in range(6):
        buffer.append({"time": float(index)})
    assert [s["time"] for s in buffer.snapshot(limit=2)] == [4.0, 5.0]


def test_clear_resets_the_buffer():
    buffer = TelemetryBuffer(capacity=4)
    buffer.append({"time": 1.0})
    buffer.clear()
    assert buffer.snapshot() == []
    assert buffer.total == 0


def test_zero_capacity_is_rejected():
    import pytest

    with pytest.raises(ValueError):
        TelemetryBuffer(capacity=0)
