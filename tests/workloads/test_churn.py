"""Churn generator and heterogeneous fleet tests."""

from __future__ import annotations

import pytest

from repro.workloads import ChurnGenerator, heterogeneous_nodes
from repro.workloads.churn import DEFAULT_NODE_PROFILES


class TestHeterogeneousNodes:
    def test_same_seed_same_fleet(self):
        a = heterogeneous_nodes(12, seed=4)
        b = heterogeneous_nodes(12, seed=4)
        assert [(n.name, n.cpu_capacity, n.memory_capacity) for n in a] == [
            (n.name, n.cpu_capacity, n.memory_capacity) for n in b
        ]

    def test_profiles_are_respected(self):
        profiles = ((8, 16384),)
        nodes = heterogeneous_nodes(5, seed=0, profiles=profiles)
        assert all(n.cpu_capacity == 8 and n.memory_capacity == 16384 for n in nodes)

    def test_mixed_fleet_actually_mixes(self):
        nodes = heterogeneous_nodes(30, seed=1)
        capacities = {(n.cpu_capacity, n.memory_capacity) for n in nodes}
        assert len(capacities) > 1
        assert capacities <= set(DEFAULT_NODE_PROFILES)

    def test_validation(self):
        with pytest.raises(ValueError):
            heterogeneous_nodes(-1)
        with pytest.raises(ValueError):
            heterogeneous_nodes(3, profiles=())


class TestChurnGenerator:
    def test_same_seed_same_stream(self):
        def fingerprint(seed):
            generator = ChurnGenerator(seed=seed)
            return [
                (
                    w.vjob.name,
                    round(w.vjob.submitted_at, 6),
                    len(w.vjob.vms),
                    tuple(vm.memory for vm in w.vjob.vms),
                    round(w.duration, 6),
                )
                for w in generator.workloads(8)
            ]

        assert fingerprint(3) == fingerprint(3)
        assert fingerprint(3) != fingerprint(4)

    def test_arrivals_are_strictly_increasing(self):
        generator = ChurnGenerator(seed=2, mean_interarrival_s=60.0)
        stream = generator.workloads(10)
        times = [w.vjob.submitted_at for w in stream]
        assert times == sorted(times)
        assert times[0] > 0

    def test_successive_calls_continue_the_stream(self):
        generator = ChurnGenerator(seed=6)
        first = generator.workloads(3)
        second = generator.workloads(3, start_time=first[-1].vjob.submitted_at)
        names = [w.vjob.name for w in first + second]
        assert names == [f"churn{i}" for i in range(6)]
        priorities = [w.vjob.priority for w in first + second]
        assert priorities == list(range(6))

    def test_burst_submits_everything_at_once(self):
        generator = ChurnGenerator(seed=1)
        burst = generator.burst(4, at=30.0)
        assert all(w.vjob.submitted_at == 30.0 for w in burst)
        assert len({w.vjob.name for w in burst}) == 4

    def test_workloads_are_well_formed(self):
        generator = ChurnGenerator(seed=9, vm_count_choices=(2, 4))
        for workload in generator.workloads(5):
            assert set(workload.traces) == set(workload.vjob.vm_names)
            assert workload.duration > 0
            assert workload.peak_cpu_demand >= 1

    def test_mean_interarrival_validation(self):
        with pytest.raises(ValueError):
            ChurnGenerator(mean_interarrival_s=0.0)
