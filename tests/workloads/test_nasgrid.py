"""Tests of the NASGrid-like workload synthesis."""

import random

import pytest

from repro.workloads.nasgrid import (
    TASK_DURATION_S,
    Benchmark,
    NASGridSpec,
    ProblemClass,
    make_nasgrid_vjob,
    nasgrid_traces,
    paper_experiment_vjobs,
)


class TestTraceStructure:
    def test_ed_all_vms_compute_constantly(self):
        traces = nasgrid_traces(NASGridSpec(Benchmark.ED, ProblemClass.W, vm_count=4))
        assert all(t.compute_time == t.total_duration for t in traces)
        assert all(t.peak_demand == 1 for t in traces)

    def test_hc_only_one_vm_computes_at_a_time(self):
        traces = nasgrid_traces(NASGridSpec(Benchmark.HC, ProblemClass.W, vm_count=5))
        duration = traces[0].total_duration
        # sample the chain at several points and check the parallelism is 1
        for progress in [1.0, duration * 0.3, duration * 0.7, duration - 1.0]:
            active = sum(t.demand_at(progress) for t in traces)
            assert active == 1

    def test_hc_every_vm_computes_exactly_one_task(self):
        spec = NASGridSpec(Benchmark.HC, ProblemClass.A, vm_count=6)
        traces = nasgrid_traces(spec)
        for trace in traces:
            assert trace.compute_time == pytest.approx(spec.task_duration())

    def test_vp_pipeline_has_bounded_parallelism(self):
        traces = nasgrid_traces(NASGridSpec(Benchmark.VP, ProblemClass.W, vm_count=9))
        duration = max(t.total_duration for t in traces)
        peak = 0
        step = duration / 50
        progress = 0.0
        while progress < duration:
            peak = max(peak, sum(t.demand_at(progress) for t in traces))
            progress += step
        assert 1 <= peak <= 3

    def test_mb_parallelism_grows_over_time(self):
        traces = nasgrid_traces(NASGridSpec(Benchmark.MB, ProblemClass.W, vm_count=6))
        duration = max(t.total_duration for t in traces)
        early = sum(t.demand_at(duration * 0.05) for t in traces)
        late = sum(t.demand_at(duration * 0.9) for t in traces)
        assert early <= late

    def test_class_scaling(self):
        w = nasgrid_traces(NASGridSpec(Benchmark.HC, ProblemClass.W, vm_count=3))
        b = nasgrid_traces(NASGridSpec(Benchmark.HC, ProblemClass.B, vm_count=3))
        assert b[0].total_duration > w[0].total_duration
        assert TASK_DURATION_S[ProblemClass.W] < TASK_DURATION_S[ProblemClass.A]
        assert TASK_DURATION_S[ProblemClass.A] < TASK_DURATION_S[ProblemClass.B]

    def test_jitter_changes_durations_deterministically(self):
        spec = NASGridSpec(Benchmark.ED, ProblemClass.W, vm_count=3)
        a = nasgrid_traces(spec, rng=random.Random(1), jitter=0.2)
        b = nasgrid_traces(spec, rng=random.Random(1), jitter=0.2)
        c = nasgrid_traces(spec, rng=random.Random(2), jitter=0.2)
        assert [t.total_duration for t in a] == [t.total_duration for t in b]
        assert [t.total_duration for t in a] != [t.total_duration for t in c]

    def test_jitter_without_rng_is_deterministic(self):
        """The fallback RNG is seeded: two calls without an explicit rng must
        produce the same jittered traces (no hidden global randomness)."""
        spec = NASGridSpec(Benchmark.ED, ProblemClass.W, vm_count=3)
        a = nasgrid_traces(spec, jitter=0.2)
        b = nasgrid_traces(spec, jitter=0.2)
        assert [t.total_duration for t in a] == [t.total_duration for t in b]


class TestVJobFactory:
    def test_vjob_and_traces_are_consistent(self):
        workload = make_nasgrid_vjob(
            "job1", NASGridSpec(Benchmark.HC, ProblemClass.W, vm_count=4), memory_mb=1024
        )
        assert workload.vjob.name == "job1"
        assert len(workload.vjob.vms) == 4
        assert set(workload.traces) == set(workload.vjob.vm_names)
        assert all(vm.memory == 1024 for vm in workload.vjob.vms)
        assert all(vm.vjob == "job1" for vm in workload.vjob.vms)

    def test_initial_cpu_demand_matches_first_phase(self):
        workload = make_nasgrid_vjob(
            "job1", NASGridSpec(Benchmark.HC, ProblemClass.W, vm_count=3), memory_mb=512
        )
        for vm in workload.vjob.vms:
            assert vm.cpu_demand == workload.traces[vm.name].demand_at(0.0)

    def test_per_vm_memory_sizes(self):
        memories = [512, 1024, 2048]
        workload = make_nasgrid_vjob(
            "job1",
            NASGridSpec(Benchmark.ED, ProblemClass.W, vm_count=3),
            memory_mb=memories,
        )
        assert [vm.memory for vm in workload.vjob.vms] == memories

    def test_memory_list_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            make_nasgrid_vjob(
                "job1",
                NASGridSpec(Benchmark.ED, ProblemClass.W, vm_count=3),
                memory_mb=[512],
            )


class TestPaperExperimentVjobs:
    def test_eight_vjobs_of_nine_vms(self):
        workloads = paper_experiment_vjobs(count=8, vm_count=9)
        assert len(workloads) == 8
        assert all(len(w.vjob.vms) == 9 for w in workloads)
        assert all(w.vjob.submitted_at == 0.0 for w in workloads)
        priorities = [w.vjob.priority for w in workloads]
        assert priorities == sorted(priorities)

    def test_memory_sizes_are_in_paper_range(self):
        workloads = paper_experiment_vjobs(count=4, vm_count=9)
        for workload in workloads:
            for vm in workload.vjob.vms:
                assert vm.memory in (512, 1024, 2048)

    def test_generation_is_deterministic(self):
        a = paper_experiment_vjobs(count=3)
        b = paper_experiment_vjobs(count=3)
        assert [w.duration for w in a] == [w.duration for w in b]
