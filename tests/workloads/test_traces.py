"""Tests of demand traces and vjob workloads."""

import pytest

from repro.model.vjob import VJob
from repro.model.vm import VirtualMachine
from repro.workloads.traces import (
    DemandTrace,
    Phase,
    VJobWorkload,
    alternating_trace,
    constant_trace,
)


class TestPhase:
    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            Phase(duration=-1.0, cpu_demand=0)
        with pytest.raises(ValueError):
            Phase(duration=1.0, cpu_demand=-1)


class TestDemandTrace:
    def test_requires_at_least_one_phase(self):
        with pytest.raises(ValueError):
            DemandTrace([])

    def test_total_and_compute_time(self):
        trace = alternating_trace([(10.0, 0), (20.0, 1), (5.0, 0)])
        assert trace.total_duration == 35.0
        assert trace.compute_time == 20.0
        assert trace.peak_demand == 1
        assert len(trace) == 3

    def test_demand_at_progress(self):
        trace = alternating_trace([(10.0, 0), (20.0, 1)])
        assert trace.demand_at(0.0) == 0
        assert trace.demand_at(9.99) == 0
        assert trace.demand_at(10.0) == 1
        assert trace.demand_at(29.0) == 1
        assert trace.demand_at(31.0) == 0  # beyond the end

    def test_negative_progress_rejected(self):
        with pytest.raises(ValueError):
            constant_trace(10.0).demand_at(-1.0)

    def test_is_finished(self):
        trace = constant_trace(100.0)
        assert not trace.is_finished(99.0)
        assert trace.is_finished(100.0)
        assert trace.is_finished(1000.0)

    def test_constant_trace(self):
        trace = constant_trace(60.0, cpu_demand=2)
        assert trace.total_duration == 60.0
        assert trace.demand_at(30.0) == 2


class TestVJobWorkload:
    def _workload(self):
        vms = [
            VirtualMachine(name="j.vm0", memory=512, cpu_demand=1, vjob="j"),
            VirtualMachine(name="j.vm1", memory=512, cpu_demand=0, vjob="j"),
        ]
        vjob = VJob(name="j", vms=vms)
        traces = {
            "j.vm0": alternating_trace([(100.0, 1)]),
            "j.vm1": alternating_trace([(50.0, 0), (50.0, 1), (100.0, 0)]),
        }
        return VJobWorkload(vjob=vjob, traces=traces)

    def test_duration_is_longest_trace(self):
        assert self._workload().duration == 200.0

    def test_peak_and_average_demand(self):
        workload = self._workload()
        assert workload.peak_cpu_demand == 2
        assert workload.average_cpu_demand == pytest.approx((100.0 + 50.0) / 200.0)

    def test_demands_at(self):
        workload = self._workload()
        assert workload.demands_at(75.0) == {"j.vm0": 1, "j.vm1": 1}
        assert workload.demands_at(150.0) == {"j.vm0": 0, "j.vm1": 0}

    def test_is_finished(self):
        workload = self._workload()
        assert not workload.is_finished(150.0)
        assert workload.is_finished(200.0)

    def test_missing_trace_rejected(self):
        vms = [VirtualMachine(name="j.vm0", memory=512, vjob="j")]
        vjob = VJob(name="j", vms=vms)
        with pytest.raises(ValueError):
            VJobWorkload(vjob=vjob, traces={})
