"""Tests of the Section 5.1 configuration generator."""

import pytest

from repro.model.vjob import VJobState
from repro.model.vm import VMState
from repro.workloads.generator import (
    TraceConfigurationGenerator,
    paper_cluster_nodes,
    paper_vm_counts,
)
from repro.workloads.nasgrid import MEMORY_CHOICES_MB


class TestPaperConstants:
    def test_vm_counts_match_figure_10(self):
        assert paper_vm_counts() == [54, 108, 162, 216, 270, 324, 378, 432, 486]

    def test_paper_cluster_has_11_dual_core_nodes(self):
        nodes = paper_cluster_nodes()
        assert len(nodes) == 11
        assert all(n.cpu_capacity == 2 for n in nodes)


class TestGeneratedScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        return TraceConfigurationGenerator(seed=7).generate(108)

    def test_vm_count_is_reached(self, scenario):
        assert scenario.vm_count >= 108

    def test_cluster_shape_matches_section_5_1(self, scenario):
        nodes = scenario.configuration.nodes
        assert len(nodes) == 200
        assert all(n.cpu_capacity == 2 and n.memory_capacity == 4096 for n in nodes)

    def test_vjobs_have_9_or_18_vms(self, scenario):
        for workload in scenario.workloads:
            assert len(workload.vjob.vms) in (9, 18)

    def test_memory_sizes_come_from_the_paper_choices(self, scenario):
        for vm in scenario.configuration.vms:
            assert vm.memory in MEMORY_CHOICES_MB

    def test_memory_capacity_is_respected_by_initial_placement(self, scenario):
        for node in scenario.configuration.node_names:
            usage = scenario.configuration.usage_of(node)
            assert usage.memory <= scenario.configuration.node(node).memory_capacity

    def test_vjob_states_match_vm_states(self, scenario):
        configuration = scenario.configuration
        for workload in scenario.workloads:
            vjob = workload.vjob
            vm_states = {configuration.state_of(name) for name in vjob.vm_names}
            if vjob.state is VJobState.RUNNING:
                assert vm_states == {VMState.RUNNING}
            elif vjob.state is VJobState.SLEEPING:
                assert vm_states == {VMState.SLEEPING}
            else:
                assert vm_states == {VMState.WAITING}

    def test_queue_contains_every_vjob(self, scenario):
        assert len(scenario.queue) == len(scenario.workloads)

    def test_vjob_of_vm_mapping(self, scenario):
        mapping = scenario.vjob_of_vm()
        assert len(mapping) == scenario.vm_count
        for workload in scenario.workloads:
            for name in workload.vjob.vm_names:
                assert mapping[name] == workload.vjob.name


def scenario_fingerprint(scenario):
    """Every observable random choice of a generated scenario: placements,
    states, VM sizes and demands, and the jittered trace phases."""
    configuration = scenario.configuration
    return {
        "placement": scenario.configuration.placement(),
        "states": {
            name: configuration.state_of(name).value
            for name in sorted(configuration.vm_names)
        },
        "vms": {
            vm.name: (vm.memory, vm.cpu_demand)
            for vm in configuration.vms
        },
        "vjob_states": [w.vjob.state.value for w in scenario.workloads],
        "traces": {
            name: [
                (round(phase.duration, 9), phase.cpu_demand)
                for phase in trace.phases
            ]
            for w in scenario.workloads
            for name, trace in w.traces.items()
        },
    }


class TestDeterminism:
    def test_same_seed_gives_same_scenario(self):
        a = TraceConfigurationGenerator(seed=3).generate(54)
        b = TraceConfigurationGenerator(seed=3).generate(54)
        assert a.configuration.placement() == b.configuration.placement()
        assert [w.vjob.state for w in a.workloads] == [w.vjob.state for w in b.workloads]

    def test_same_seed_gives_identical_fingerprint(self):
        """Not just the placement: memories, demands, states and the jittered
        traces must all be byte-identical for the same seed."""
        a = TraceConfigurationGenerator(seed=17).generate(108)
        b = TraceConfigurationGenerator(seed=17).generate(108)
        assert scenario_fingerprint(a) == scenario_fingerprint(b)

    def test_seed_attribute_is_recorded(self):
        assert TraceConfigurationGenerator(seed=17).seed == 17

    def test_explicit_seed_per_sample(self):
        generator = TraceConfigurationGenerator(seed=3)
        a = generator.generate(54, seed=11)
        b = TraceConfigurationGenerator(seed=99).generate(54, seed=11)
        assert a.configuration.placement() == b.configuration.placement()

    def test_different_seeds_differ(self):
        a = TraceConfigurationGenerator(seed=1).generate(54)
        b = TraceConfigurationGenerator(seed=2).generate(54)
        assert (
            a.configuration.placement() != b.configuration.placement()
            or [w.vjob.state for w in a.workloads] != [w.vjob.state for w in b.workloads]
        )
