"""RunResult JSON round-trip and the canonical summary row."""

import json

from repro.api.results import (
    ConstraintViolationRecord,
    ContextSwitchRecord,
    FaultRecord,
    RunResult,
    UtilizationSample,
)
from repro.model.node import make_working_nodes
from repro.api.scenario import Scenario
from repro.scale.campaign import CampaignPoint, summarize_run
from repro.sim.faults import FaultSchedule
from repro.testing import make_workload


def full_result() -> RunResult:
    return RunResult(
        makespan=360.0,
        policy="consolidation",
        switches=[
            ContextSwitchRecord(
                time=0.0,
                cost=12,
                duration=8.5,
                migrations=1,
                runs=2,
                stops=0,
                suspends=1,
                resumes=0,
                local_resumes=0,
                used_fallback=True,
                failed_migrations=1,
            )
        ],
        utilization=[
            UtilizationSample(
                time=0.0,
                cpu_demand_units=4,
                cpu_used_units=3,
                cpu_capacity_units=8,
                memory_used_mb=2048,
            )
        ],
        completion_times={"job-a": 240.0},
        metadata={"final_viable": True, "planning_failures": 2},
        faults=[
            FaultRecord(
                time=120.0,
                kind="node_crash",
                target="node-1",
                detected_at=150.0,
                affected_vjobs=("job-a",),
                detail="evicted 2 VMs",
            )
        ],
        repair_latencies={"job-a": 45.0},
        sla_violations=["job-b"],
        unfinished_vjobs=["job-b"],
        constraint_violations=[
            ConstraintViolationRecord(
                time=30.0,
                constraint="spread(db.0, db.1)",
                phase="execution",
                message="both on node-0",
                stage=1,
            )
        ],
    )


def test_round_trip_is_exact():
    result = full_result()
    payload = json.loads(json.dumps(result.to_dict()))
    assert RunResult.from_dict(payload) == result


def test_round_trip_through_bytes_is_stable():
    result = full_result()
    once = json.dumps(result.to_dict(), sort_keys=True)
    twice = json.dumps(
        RunResult.from_dict(json.loads(once)).to_dict(), sort_keys=True
    )
    assert once == twice


def test_from_dict_tolerates_missing_optional_series():
    result = RunResult.from_dict({"makespan": 10.0, "policy": "fcfs"})
    assert result.makespan == 10.0
    assert result.switches == []
    assert result.faults == []


def test_real_run_round_trips():
    result = Scenario(
        nodes=make_working_nodes(3),
        workloads=[make_workload("job", vm_count=2, duration=60.0)],
        optimizer_timeout=2.0,
        use_optimizer=False,
        faults=FaultSchedule().node_crash("node-2", at=30.0),
        sla_factor=6.0,
    ).run()
    assert RunResult.from_dict(result.to_dict()) == result


def test_summary_matches_the_campaign_row():
    result = full_result()
    point = CampaignPoint(policy="consolidation", fleet=5, faults="crash", seed=3)
    record = summarize_run(point, result, 1.23456)
    assert record["key"] == "consolidation|5|crash|3"
    assert record["runtime_seconds"] == 1.235
    # the campaign record is exactly the grid point + summary() + runtime
    for key, value in result.summary().items():
        assert record[key] == value
    assert record["switches"] == 1
    assert record["migrations"] == 1
    assert record["fallback_switches"] == 1
    assert record["planning_failures"] == 2
    assert record["lost_vjobs"] == 1
