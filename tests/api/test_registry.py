"""Tests of the string-keyed decision-module registry."""

import pytest

from repro.api import (
    Decision,
    UnknownDecisionModuleError,
    available_decision_modules,
    get_decision_module,
    register_decision_module,
)
from repro.api import registry as registry_module
from repro.decision import (
    ConsolidationDecisionModule,
    FCFSDecisionModule,
    FFDDecisionModule,
    RJSPDecisionModule,
)


@pytest.fixture(autouse=True)
def _clean_registry():
    """Custom registrations must not leak between tests."""
    before = dict(registry_module._FACTORIES)
    yield
    registry_module._FACTORIES.clear()
    registry_module._FACTORIES.update(before)


class TestBuiltins:
    def test_all_paper_policies_are_registered(self):
        assert set(available_decision_modules()) >= {
            "consolidation",
            "fcfs",
            "ffd",
            "rjsp",
        }

    @pytest.mark.parametrize(
        ("name", "expected_type"),
        [
            ("consolidation", ConsolidationDecisionModule),
            ("fcfs", FCFSDecisionModule),
            ("ffd", FFDDecisionModule),
            ("rjsp", RJSPDecisionModule),
        ],
    )
    def test_lookup_returns_fresh_instances(self, name, expected_type):
        module = get_decision_module(name)
        assert isinstance(module, expected_type)
        assert module.name == name
        assert module is not get_decision_module(name)

    def test_factory_options_are_forwarded(self):
        module = get_decision_module("fcfs", backfilling="none")
        assert module.backfilling == "none"
        module = get_decision_module("consolidation", period=15.0)
        assert module.period == 15.0


class TestErrors:
    def test_unknown_name_raises_with_available_list(self):
        with pytest.raises(UnknownDecisionModuleError) as excinfo:
            get_decision_module("does-not-exist")
        message = str(excinfo.value)
        assert "does-not-exist" in message
        assert "consolidation" in message  # the error lists what exists

    def test_unknown_name_is_a_key_error(self):
        with pytest.raises(KeyError):
            get_decision_module("nope")

    def test_duplicate_registration_is_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_decision_module("consolidation", ConsolidationDecisionModule)

    def test_empty_name_is_rejected(self):
        with pytest.raises(ValueError):
            register_decision_module("", ConsolidationDecisionModule)


class TestCustomRegistration:
    def test_register_directly(self):
        class Noop:
            name = "noop"

            def decide(self, configuration, queue, demands=None):
                return Decision()

        register_decision_module("noop", Noop)
        assert "noop" in available_decision_modules()
        assert isinstance(get_decision_module("noop"), Noop)

    def test_register_as_decorator(self):
        @register_decision_module("decorated")
        class Decorated:
            name = "decorated"

            def decide(self, configuration, queue, demands=None):
                return Decision()

        assert isinstance(get_decision_module("decorated"), Decorated)

    def test_overwrite_replaces_builtin(self):
        class Impostor:
            name = "consolidation"

            def decide(self, configuration, queue, demands=None):
                return Decision()

        register_decision_module("consolidation", Impostor, overwrite=True)
        assert isinstance(get_decision_module("consolidation"), Impostor)
