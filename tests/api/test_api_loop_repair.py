"""Control-loop integration of the repair engine and the accounting fixes:
repair-latency attribution, honest ``unrepaired_vjobs``, ``request_stop``."""

from repro.api.loop import ControlLoop
from repro.api.scenario import Scenario
from repro.model.node import make_working_nodes
from repro.model.vjob import VJobState
from repro.service.commands import LoopCommandQueue
from repro.sim.faults import FaultEvent, FaultInjector, FaultKind, FaultSchedule
from repro.testing import make_workload


def _workloads(count=3, duration=240.0):
    return [
        make_workload(f"job-{i}", vm_count=2, duration=duration + 30.0 * i)
        for i in range(count)
    ]


class TestInjectedFaultTimestamps:
    def test_retroactive_injection_is_restamped_to_the_effective_time(self):
        injector = FaultInjector(FaultSchedule())
        injector.fire(100.0)  # the loop has advanced to t=100
        injector.inject(
            FaultEvent(time=10.0, kind=FaultKind.NODE_CRASH, target="n0")
        )
        # the recorded event carries the time it actually fires at, not the
        # stale past timestamp the operator asked for
        assert injector.injected[0].time == 100.0
        due = injector.fire(130.0)
        assert [event.time for event in due] == [100.0]

    def test_future_injection_keeps_its_timestamp(self):
        injector = FaultInjector(FaultSchedule())
        injector.fire(50.0)
        injector.inject(
            FaultEvent(time=80.0, kind=FaultKind.NODE_CRASH, target="n0")
        )
        assert injector.injected[0].time == 80.0

    def test_retroactive_slowdown_window_starts_at_the_effective_time(self):
        injector = FaultInjector(FaultSchedule())
        injector.fire(100.0)
        injector.inject(
            FaultEvent(
                time=0.0,
                kind=FaultKind.NODE_SLOWDOWN,
                target="n0",
                factor=2.0,
                duration=50.0,
            )
        )
        # without re-stamping the window [0, 50) would already be over
        assert injector.slowdown_factor("n0", 120.0) == 2.0
        assert injector.slowdown_factor("n0", 160.0) == 1.0


class TestRepairLatencyAccounting:
    def test_command_injected_crash_yields_non_negative_latencies(self):
        nodes = make_working_nodes(6)
        commands = LoopCommandQueue()
        # a stale-past crash posted mid-run: it must be attributed to the
        # boundary it lands at, so crash-to-running latency stays >= 0 and
        # is not inflated by the stale timestamp
        commands.inject_fault(
            FaultEvent(time=0.0, kind=FaultKind.NODE_CRASH, target=nodes[0].name)
        )
        scenario = Scenario(
            nodes=nodes,
            workloads=_workloads(),
            policy="consolidation",
            optimizer_timeout=2.0,
            faults=FaultSchedule(),
        )
        result = scenario.build(command_queue=commands).run()
        assert all(v >= 0 for v in result.repair_latencies.values())
        for record in result.faults:
            assert record.time <= record.detected_at

    def test_unrepaired_vjobs_reflect_the_post_final_round_state(self):
        nodes = make_working_nodes(4)
        scenario = Scenario(
            nodes=nodes,
            workloads=_workloads(count=2),
            policy="consolidation",
            optimizer_timeout=2.0,
            faults=FaultSchedule().node_crash(nodes[0].name, at=60.0),
        )
        loop = scenario.build()
        result = loop.run()
        unrepaired = result.metadata["unrepaired_vjobs"]
        # honesty: a vjob appears as unrepaired only if it is still pending
        # after the final round — never terminated, never running again
        assert set(unrepaired).isdisjoint(result.repair_latencies)
        for name in unrepaired:
            vjob = loop.queue.get(name)
            assert not vjob.is_terminated
            assert vjob.state is not VJobState.RUNNING
        assert all(v >= 0 for v in result.repair_latencies.values())


class TestRequestStop:
    def test_stop_before_run_exits_at_the_first_boundary(self):
        scenario = Scenario(
            nodes=make_working_nodes(4),
            workloads=_workloads(),
            policy="consolidation",
            optimizer_timeout=2.0,
        )
        loop = scenario.build()
        loop.request_stop()
        result = loop.run()
        assert result.metadata["stopped_early"] is True
        assert result.switches == []

    def test_uninterrupted_runs_do_not_claim_an_early_stop(self):
        scenario = Scenario(
            nodes=make_working_nodes(4),
            workloads=_workloads(count=1),
            policy="consolidation",
            optimizer_timeout=2.0,
        )
        result = scenario.run()
        assert "stopped_early" not in result.metadata


class TestRepairEngineInTheLoop:
    def test_repair_engine_round_trip_with_a_crash(self):
        nodes = make_working_nodes(8)
        scenario = Scenario(
            nodes=nodes,
            workloads=_workloads(count=4),
            policy="consolidation",
            engine="repair",
            optimizer_timeout=2.0,
            faults=FaultSchedule().node_crash(nodes[-1].name, at=120.0),
        )
        result = scenario.run()
        stats = result.metadata["repair_engine"]
        assert stats["repair_rounds"] + stats["full_rounds"] == len(
            result.switches
        )
        assert stats["full_rounds"] >= 1  # the cold first round
        assert stats["repair_rounds"] >= 1  # warm rounds repair incrementally
        assert result.metadata["final_viable"]

    def test_repair_engine_matches_cold_engine_outcomes(self):
        def run(engine):
            nodes = make_working_nodes(6)
            scenario = Scenario(
                nodes=nodes,
                workloads=_workloads(count=3),
                policy="consolidation",
                engine=engine,
                optimizer_timeout=2.0,
                faults=FaultSchedule().node_crash(nodes[-1].name, at=90.0),
            )
            result = scenario.run()
            return (
                result.makespan,
                sorted(result.completion_times),
                result.unfinished_vjobs,
            )

        # same faults, same workloads: the repair engine must complete the
        # same vjobs by the same simulated horizon as the cold solve
        assert run("repair") == run("event")

    def test_mark_dirty_is_a_no_op_for_cold_engines(self):
        scenario = Scenario(
            nodes=make_working_nodes(4),
            workloads=_workloads(count=1),
            policy="consolidation",
            optimizer_timeout=2.0,
        )
        loop = scenario.build()
        loop.switcher.mark_dirty(["anything"])  # must not raise
        result = loop.run()
        assert "repair_engine" not in result.metadata
