"""Integration tests of the Scenario / ExperimentBuilder facade.

The acceptance bar of the API redesign: the same scenario description runs
unmodified under at least two registered policies and yields comparable
structured results.
"""

import pytest

from repro import ExperimentBuilder, RunResult, Scenario
from repro.api import RecordingObserver
from repro.model import make_working_nodes
from repro.testing import make_workload


def contended_workloads():
    """Three vjobs on a cluster that cannot run them all at peak."""
    return [
        make_workload("high", vm_count=1, duration=90.0, priority=1, idle_head=60.0),
        make_workload("mid", vm_count=1, duration=90.0, priority=2, idle_head=60.0),
        make_workload("low", vm_count=1, duration=90.0, priority=3, idle_head=60.0),
    ]


def small_nodes():
    return make_working_nodes(1, cpu_capacity=2, memory_capacity=4096)


class TestScenarioRun:
    def test_run_returns_a_structured_result(self):
        result = Scenario(
            nodes=small_nodes(),
            workloads=contended_workloads(),
            policy="consolidation",
            optimizer_timeout=2.0,
        ).run()
        assert isinstance(result, RunResult)
        assert result.policy == "consolidation"
        assert set(result.completion_times) == {"high", "mid", "low"}
        assert result.makespan == max(result.completion_times.values())
        assert result.utilization
        assert result.metadata["final_viable"] is True

    def test_a_scenario_needs_nodes(self):
        with pytest.raises(ValueError):
            Scenario(nodes=[], workloads=contended_workloads())

    def test_same_scenario_runs_under_two_policies(self):
        """The tentpole acceptance criterion: one description, two policies."""
        results = {}
        for policy in ("consolidation", "fcfs"):
            results[policy] = Scenario(
                nodes=small_nodes(),
                workloads=contended_workloads(),
                policy=policy,
                optimizer_timeout=2.0,
            ).run()

        for policy, result in results.items():
            assert result.policy == policy
            assert set(result.completion_times) == {"high", "mid", "low"}
            assert result.metadata["final_viable"] is True

        # Under consolidation the overflow vjob sleeps (suspend/resume);
        # FCFS + static booking never suspends, the overflow simply waits.
        assert sum(s.suspends for s in results["consolidation"].switches) >= 1
        assert sum(s.suspends for s in results["fcfs"].switches) == 0
        # Both strategies finish the same work; results are comparable fields.
        assert results["consolidation"].makespan > 0
        assert results["fcfs"].makespan > 0

    def test_with_policy_copies_the_scenario(self):
        scenario = Scenario(nodes=small_nodes(), workloads=contended_workloads())
        other = scenario.with_policy("fcfs", backfilling="none")
        assert scenario.policy == "consolidation"
        assert other.policy == "fcfs"
        assert other.policy_options == {"backfilling": "none"}
        assert other.nodes == scenario.nodes

    def test_compare_requires_a_workload_factory(self):
        scenario = Scenario(nodes=small_nodes(), workloads=contended_workloads())
        with pytest.raises(ValueError, match="workload_factory"):
            scenario.compare(["consolidation", "fcfs"])

    def test_compare_runs_every_policy_on_fresh_workloads(self):
        scenario = Scenario(
            nodes=small_nodes(),
            workloads=contended_workloads(),
            optimizer_timeout=2.0,
        )
        results = scenario.compare(
            ["consolidation", "fcfs"], workload_factory=contended_workloads
        )
        assert set(results) == {"consolidation", "fcfs"}
        for result in results.values():
            assert set(result.completion_times) == {"high", "mid", "low"}

    def test_compare_keeps_options_of_the_configured_policy(self, monkeypatch):
        scenario = Scenario(
            nodes=small_nodes(),
            workloads=contended_workloads(),
            policy="fcfs",
            policy_options={"backfilling": "none"},
            optimizer_timeout=2.0,
        )
        built = []
        original_build = Scenario.build

        def spying_build(self):
            built.append((self.policy, dict(self.policy_options)))
            return original_build(self)

        monkeypatch.setattr(Scenario, "build", spying_build)
        results = scenario.compare(
            ["fcfs", "consolidation"], workload_factory=contended_workloads
        )
        assert set(results) == {"fcfs", "consolidation"}
        # the fcfs run used the scenario's own backfilling option
        assert ("fcfs", {"backfilling": "none"}) in built
        assert ("consolidation", {}) in built

    def test_run_static_shares_the_description(self):
        scenario = Scenario(nodes=small_nodes(), workloads=contended_workloads())
        static = scenario.run_static()
        assert static.policy == "static"
        assert set(static.completion_times) == {"high", "mid", "low"}
        assert static.schedule is not None


class TestPlanningRobustness:
    def test_permanently_unplannable_policy_fails_loudly(self):
        """A policy that keeps demanding the impossible must raise instead of
        silently spinning until max_time."""
        from repro.api import Decision
        from repro.model import VMState
        from repro.model.errors import PlanningError

        class Impossible:
            name = "impossible"

            def decide(self, configuration, queue, demands=None):
                # demand every VM running, even the ones that cannot fit
                return Decision(
                    vm_states={
                        vm: VMState.RUNNING
                        for vjob in queue.pending()
                        for vm in vjob.vm_names
                    }
                )

        nodes = make_working_nodes(1, cpu_capacity=1, memory_capacity=600)
        # a 1024 MB VM can never run on a 600 MB node
        workloads = [make_workload("stuck", vm_count=1, memory=1024, duration=50.0)]
        scenario = Scenario(
            nodes=nodes,
            workloads=workloads,
            policy=Impossible(),
            optimizer_timeout=0.5,
        )
        with pytest.raises(PlanningError, match="cannot make progress"):
            scenario.run()


class TestObservers:
    def test_observer_sees_the_whole_lifecycle(self):
        observer = RecordingObserver()
        result = (
            Scenario(
                nodes=small_nodes(),
                workloads=contended_workloads(),
                optimizer_timeout=2.0,
            )
            .observe(observer)
            .run()
        )
        kinds = [name for name, _ in observer.events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert observer.of_kind("run_end") == [result]
        assert observer.of_kind("switch") == result.switches
        completed = dict(observer.of_kind("vjob_completed"))
        assert set(completed) == {"high", "mid", "low"}
        assert len(observer.of_kind("sample")) == len(result.utilization)


class TestExperimentBuilder:
    def test_fluent_construction_matches_scenario(self):
        observer = RecordingObserver()
        scenario = (
            ExperimentBuilder()
            .nodes(small_nodes())
            .workloads(contended_workloads())
            .policy("fcfs", backfilling="none")
            .period(15.0)
            .optimizer_timeout(1.5)
            .max_time(3600.0)
            .observe(observer)
            .build()
        )
        assert isinstance(scenario, Scenario)
        assert scenario.policy == "fcfs"
        assert scenario.policy_options == {"backfilling": "none"}
        assert scenario.period == 15.0
        assert scenario.optimizer_timeout == 1.5
        assert scenario.max_time == 3600.0
        assert scenario.observers == [observer]

    def test_builder_run_executes_the_scenario(self):
        result = (
            ExperimentBuilder()
            .nodes(small_nodes())
            .workloads(contended_workloads())
            .policy("consolidation")
            .optimizer_timeout(2.0)
            .run()
        )
        assert set(result.completion_times) == {"high", "mid", "low"}

    def test_build_exposes_the_live_loop(self):
        loop = (
            Scenario(
                nodes=small_nodes(),
                workloads=contended_workloads(),
                optimizer_timeout=2.0,
            )
        ).build()
        result = loop.run()
        assert loop.queue.all_terminated()
        assert loop.cluster.configuration.is_viable()
        assert result.metadata["final_viable"] is True
