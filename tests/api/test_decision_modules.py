"""Protocol conformance of the four built-in decision modules."""

import pytest

from repro.api import (
    Decision,
    DecisionModule,
    available_decision_modules,
    get_decision_module,
    needs_switch,
    stop_terminated_vms,
)
from repro.model import Configuration, VJobQueue, VJobState, VMState, make_working_nodes
from repro.testing import make_vjob

PAPER_POLICIES = ("consolidation", "fcfs", "ffd", "rjsp")


def two_vjob_setup():
    """Two 2-VM vjobs on a roomy 2-node cluster, nothing running yet."""
    configuration = Configuration(
        nodes=make_working_nodes(2, cpu_capacity=2, memory_capacity=4096)
    )
    first = make_vjob("first", vm_count=2, priority=1)
    second = make_vjob("second", vm_count=2, priority=2)
    for vjob in (first, second):
        for vm in vjob.vms:
            configuration.add_vm(vm)
    return configuration, VJobQueue([first, second])


class TestProtocolConformance:
    @pytest.mark.parametrize("name", PAPER_POLICIES)
    def test_module_satisfies_the_protocol(self, name):
        module = get_decision_module(name)
        assert isinstance(module, DecisionModule)
        assert module.name == name

    @pytest.mark.parametrize("name", PAPER_POLICIES)
    def test_decide_returns_a_unified_decision(self, name):
        configuration, queue = two_vjob_setup()
        decision = get_decision_module(name).decide(configuration, queue)
        assert isinstance(decision, Decision)
        assert set(decision.vm_states) == {
            "first.vm0", "first.vm1", "second.vm0", "second.vm1",
        }
        assert all(isinstance(s, VMState) for s in decision.vm_states.values())
        assert decision.vjob_states["first"] is VJobState.RUNNING
        assert decision.vjob_states["second"] is VJobState.RUNNING

    @pytest.mark.parametrize("name", PAPER_POLICIES)
    def test_terminated_vjobs_are_stopped_by_every_policy(self, name):
        configuration, queue = two_vjob_setup()
        done = queue.get("first")
        done.run()
        configuration.set_running("first.vm0", "node-0")
        configuration.set_running("first.vm1", "node-1")
        done.terminate()
        decision = get_decision_module(name).decide(configuration, queue)
        assert decision.vm_states["first.vm0"] is VMState.TERMINATED
        assert decision.vm_states["first.vm1"] is VMState.TERMINATED

    @pytest.mark.parametrize("name", available_decision_modules())
    def test_every_registered_policy_conforms(self, name):
        assert isinstance(get_decision_module(name), DecisionModule)


class TestPolicyCharacter:
    """The policies must keep their distinguishing behaviours."""

    def overloaded_setup(self):
        """Two running 2-VM vjobs demanding 4 units on a 2-unit cluster."""
        configuration = Configuration(
            nodes=make_working_nodes(2, cpu_capacity=1, memory_capacity=4096)
        )
        high = make_vjob("high", vm_count=2, priority=1)
        low = make_vjob("low", vm_count=2, priority=2)
        high.run()
        low.run()
        for vjob in (high, low):
            for vm in vjob.vms:
                configuration.add_vm(vm)
        configuration.set_running("high.vm0", "node-0")
        configuration.set_running("high.vm1", "node-1")
        configuration.set_running("low.vm0", "node-0")
        configuration.set_running("low.vm1", "node-1")
        return configuration, VJobQueue([high, low])

    def test_consolidation_suspends_the_overflow(self):
        configuration, queue = self.overloaded_setup()
        decision = get_decision_module("consolidation").decide(configuration, queue)
        assert decision.vjob_states["high"] is VJobState.RUNNING
        assert decision.vjob_states["low"] is VJobState.SLEEPING
        assert decision.vm_states["low.vm0"] is VMState.SLEEPING

    def test_fcfs_never_suspends_started_vjobs(self):
        configuration, queue = self.overloaded_setup()
        decision = get_decision_module("fcfs").decide(configuration, queue)
        # Static allocation: both vjobs already hold their booking.
        assert decision.vjob_states["high"] is VJobState.RUNNING
        assert decision.vjob_states["low"] is VJobState.RUNNING
        assert VMState.SLEEPING not in decision.vm_states.values()

    def test_fcfs_blocks_the_queue_without_backfilling(self):
        configuration = Configuration(
            nodes=make_working_nodes(2, cpu_capacity=1, memory_capacity=4096)
        )
        big = make_vjob("big", vm_count=2, priority=1)  # books both CPUs... if started
        blocker = make_vjob("blocker", vm_count=4, priority=0)  # can never fit
        small = make_vjob("small", vm_count=1, priority=2)
        for vjob in (blocker, big, small):
            for vm in vjob.vms:
                configuration.add_vm(vm)
        queue = VJobQueue([blocker, big, small])

        strict = get_decision_module("fcfs", backfilling="none").decide(
            configuration, queue
        )
        # blocker (4 CPUs on a 2-CPU cluster) blocks everything behind it
        assert strict.vjob_states["blocker"] is VJobState.WAITING
        assert strict.vjob_states["big"] is VJobState.WAITING
        assert strict.vjob_states["small"] is VJobState.WAITING

        easy = get_decision_module("fcfs", backfilling="easy").decide(
            configuration, queue
        )
        # EASY backfilling lets the fitting vjobs jump the blocked head
        assert easy.vjob_states["blocker"] is VJobState.WAITING
        assert easy.vjob_states["big"] is VJobState.RUNNING

    def test_fcfs_started_vjobs_book_before_waiting_ones_are_admitted(self):
        """A higher-priority waiting vjob must not be admitted against
        capacity already booked by a started lower-priority vjob."""
        configuration = Configuration(
            nodes=make_working_nodes(2, cpu_capacity=1, memory_capacity=4096)
        )
        # 'low' (later priority) is already running and books both CPUs;
        # 'high' scans first in queue order but must wait.
        high = make_vjob("high", vm_count=2, priority=1)
        low = make_vjob("low", vm_count=2, priority=2)
        low.run()
        for vjob in (high, low):
            for vm in vjob.vms:
                configuration.add_vm(vm)
        configuration.set_running("low.vm0", "node-0")
        configuration.set_running("low.vm1", "node-1")
        queue = VJobQueue([high, low])

        decision = get_decision_module("fcfs").decide(configuration, queue)
        assert decision.vjob_states["low"] is VJobState.RUNNING
        assert decision.vjob_states["high"] is VJobState.WAITING
        running = [s for s in decision.vm_states.values() if s is VMState.RUNNING]
        assert len(running) == 2  # only low's VMs: the booking is respected

    def test_fcfs_admission_requires_a_per_node_feasible_placement(self):
        """Aggregate free capacity is not enough: a vjob whose VMs cannot be
        packed on any single node must keep waiting, not wedge the loop."""
        configuration = Configuration(
            nodes=make_working_nodes(2, cpu_capacity=4, memory_capacity=3584)
        )
        # a and b book 3x1024 MB each (fits: one per node plus change);
        # c's single 2048 MB VM fits the aggregate leftover (1024+1024) but
        # no single node can host it.
        a = make_vjob("a", vm_count=3, memory=1024, priority=1)
        b = make_vjob("b", vm_count=3, memory=1024, priority=2)
        c = make_vjob("c", vm_count=1, memory=2048, priority=3)
        for vjob in (a, b, c):
            for vm in vjob.vms:
                configuration.add_vm(vm)
        decision = get_decision_module("fcfs").decide(
            configuration, VJobQueue([a, b, c])
        )
        assert decision.vjob_states["a"] is VJobState.RUNNING
        assert decision.vjob_states["b"] is VJobState.RUNNING
        assert decision.vjob_states["c"] is VJobState.WAITING

    def test_fcfs_admits_in_submission_order_not_priority_order(self):
        """First-Come-First-Served: the analytic baseline orders by submit
        time, so the loop policy must too."""
        configuration = Configuration(
            nodes=make_working_nodes(1, cpu_capacity=1, memory_capacity=4096)
        )
        early = make_vjob("early", vm_count=1, priority=9)
        late = make_vjob("late", vm_count=1, priority=1)
        early.submitted_at = 0.0
        late.submitted_at = 10.0
        for vjob in (early, late):
            for vm in vjob.vms:
                configuration.add_vm(vm)
        decision = get_decision_module("fcfs", backfilling="none").decide(
            configuration, VJobQueue([early, late])
        )
        # only one CPU: the earlier-submitted vjob wins despite its priority
        assert decision.vjob_states["early"] is VJobState.RUNNING
        assert decision.vjob_states["late"] is VJobState.WAITING

    def test_fcfs_sleeping_vjobs_requeue_instead_of_overcommitting(self):
        """Two sleeping vjobs whose combined booking exceeds the cluster must
        not both be demanded RUNNING (the decision would be unplannable)."""
        configuration = Configuration(
            nodes=make_working_nodes(1, cpu_capacity=2, memory_capacity=2048)
        )
        a = make_vjob("a", vm_count=2, memory=1024, priority=1)
        b = make_vjob("b", vm_count=2, memory=1024, priority=2)
        for vjob in (a, b):
            vjob.run()
            vjob.suspend()
            for vm in vjob.vms:
                configuration.add_vm(vm)
                configuration.set_sleeping(vm.name, "node-0")
        decision = get_decision_module("fcfs").decide(
            configuration, VJobQueue([a, b])
        )
        # only one vjob fits: the other stays sleeping, no over-commitment
        states = set(decision.vjob_states.values())
        assert states == {VJobState.RUNNING, VJobState.SLEEPING}
        running_vms = [
            s for s in decision.vm_states.values() if s is VMState.RUNNING
        ]
        assert len(running_vms) == 2

    def test_ffd_provides_an_explicit_target(self):
        configuration, queue = two_vjob_setup()
        decision = get_decision_module("ffd").decide(configuration, queue)
        assert decision.target is not None
        assert decision.target.is_viable()

    def test_rjsp_has_no_fallback(self):
        configuration, queue = two_vjob_setup()
        decision = get_decision_module("rjsp").decide(configuration, queue)
        assert decision.fallback_target is None
        assert decision.target is None
        assert decision.rjsp is not None
        assert decision.rjsp.accepted == ["first", "second"]


class TestSharedHelpers:
    def test_needs_switch_detects_state_mismatch(self):
        configuration, queue = two_vjob_setup()
        decision = Decision(vm_states={"first.vm0": VMState.RUNNING})
        assert needs_switch(configuration, decision)

    def test_no_switch_when_states_match_and_viable(self):
        configuration, queue = two_vjob_setup()
        queue.get("first").run()
        configuration.set_running("first.vm0", "node-0")
        decision = Decision(vm_states={"first.vm0": VMState.RUNNING})
        assert not needs_switch(configuration, decision)

    def test_stop_terminated_vms_only_touches_running_vms(self):
        configuration, queue = two_vjob_setup()
        vjob = queue.get("first")
        vjob.run()
        configuration.set_running("first.vm0", "node-0")
        vjob.terminate()
        vm_states = stop_terminated_vms(configuration, queue, {})
        # first.vm1 never ran: nothing to stop
        assert vm_states == {"first.vm0": VMState.TERMINATED}
