"""Control-loop reactions to injected faults and churn pressure.

Covers the fault paths the ISSUE singles out: a crash while a migration was
in flight, a churn arrival burst exceeding the cluster capacity, plus the
repair/SLA bookkeeping of the chaos-aware ``RunResult``.
"""

from __future__ import annotations

import pytest

from repro import FaultSchedule, Scenario
from repro.api import RecordingObserver
from repro.model import make_working_nodes
from repro.model.vjob import VJobState
from repro.sim.faults import FaultInjector
from repro.testing import make_vjob
from repro.workloads import ChurnGenerator, ProblemClass, VJobWorkload, alternating_trace

OPTIMIZER_TIMEOUT_S = 10.0


def simple_workload(name: str, priority: int, phases) -> VJobWorkload:
    """A vjob of two VMs playing the same (duration, demand) phases."""
    vjob = make_vjob(name, vm_count=2, memory=1024, priority=priority)
    return VJobWorkload(
        vjob=vjob,
        traces={vm.name: alternating_trace(phases) for vm in vjob.vms},
    )


class TestNodeCrashRecovery:
    def _scenario(self, faults=None, **kwargs):
        nodes = make_working_nodes(4, cpu_capacity=2, memory_capacity=3584)
        workloads = [
            simple_workload("w0", 0, [(240.0, 1)]),
            simple_workload("w1", 1, [(240.0, 1)]),
            simple_workload("w2", 2, [(240.0, 1)]),
        ]
        return Scenario(
            nodes=nodes,
            workloads=workloads,
            policy="consolidation",
            optimizer_timeout=OPTIMIZER_TIMEOUT_S,
            faults=faults,
            **kwargs,
        )

    def test_crash_evicts_node_and_repairs_vjobs(self):
        observer = RecordingObserver()
        scenario = self._scenario(
            faults=FaultSchedule().node_crash("node-0", at=90.0)
        ).observe(observer)
        loop = scenario.build()
        result = loop.run()

        assert not loop.cluster.configuration.has_node("node-0")
        assert [f.kind for f in result.faults] == ["node_crash"]
        crash = result.faults[0]
        assert crash.target == "node-0"
        assert crash.affected_vjobs  # someone was running there
        # every knocked-out vjob came back and finished
        for name in crash.affected_vjobs:
            assert name in result.repair_latencies
            assert result.repair_latencies[name] > 0
        assert result.unfinished_vjobs == []
        assert result.lost_vjob_count == 0
        # observers saw the fault and the repairs
        assert len(observer.of_kind("fault")) == 1
        assert len(observer.of_kind("repair")) == len(crash.affected_vjobs)

    def test_crash_keeps_progress_so_makespan_only_inflates(self):
        baseline = self._scenario().run()
        chaotic = self._scenario(
            faults=FaultSchedule().node_crash("node-0", at=90.0)
        ).run()
        assert chaotic.makespan >= baseline.makespan
        assert chaotic.unfinished_vjobs == []

    def test_crash_of_absent_node_is_recorded_as_noop(self):
        result = self._scenario(
            faults=FaultSchedule().node_crash("no-such-node", at=30.0)
        ).run()
        assert result.faults[0].detail == "node absent; ignored"
        assert result.faults[0].affected_vjobs == ()
        assert result.unfinished_vjobs == []


class TestCrashDuringMigration:
    def test_migration_failure_is_retried_and_counted(self):
        """The first migration attempt of every VM of w1 aborts; the loop
        replans and the vjob still completes."""
        nodes = make_working_nodes(3, cpu_capacity=1, memory_capacity=3584)
        # demand starts at 1 on one VM, then both compute: the consolidation
        # round has to migrate to rebalance.
        w0 = simple_workload("w0", 0, [(120.0, 1)])
        w1 = simple_workload("w1", 1, [(60.0, 0), (180.0, 1)])
        schedule = (
            FaultSchedule()
            .migration_failure("w1.vm0")
            .migration_failure("w1.vm1")
        )
        result = Scenario(
            nodes=nodes,
            workloads=[w0, w1],
            policy="consolidation",
            optimizer_timeout=OPTIMIZER_TIMEOUT_S,
            faults=schedule,
        ).run()
        assert result.unfinished_vjobs == []
        # wasted migrations only counted when a migration was attempted; the
        # schedule is armed either way
        assert result.wasted_migrations >= 0

    def test_stochastic_migration_failures_never_lose_vjobs(self):
        nodes = make_working_nodes(2, cpu_capacity=2, memory_capacity=3584)
        w0 = simple_workload("w0", 0, [(120.0, 1), (240.0, 2)])
        w1 = simple_workload("w1", 1, [(360.0, 1)])
        result = Scenario(
            nodes=nodes,
            workloads=[w0, w1],
            policy="consolidation",
            optimizer_timeout=OPTIMIZER_TIMEOUT_S,
            faults=FaultSchedule(migration_failure_rate=1.0, seed=3),
        ).run()
        assert result.wasted_migrations > 0
        assert result.unfinished_vjobs == []
        assert all(s.failed_migrations >= 0 for s in result.switches)
        # every aborted attempt also lands on the fault timeline
        timeline = [f for f in result.faults if f.kind == "migration_failure"]
        assert len(timeline) == result.wasted_migrations
        assert all("aborted" in f.detail for f in timeline)

    def test_crash_lands_inside_previous_switch_window(self):
        """A crash scheduled inside a switch window is detected at the next
        iteration: migrations that had just landed on the dead node are
        repaired by replanning."""
        nodes = make_working_nodes(3, cpu_capacity=1, memory_capacity=3584)
        w0 = simple_workload("w0", 0, [(300.0, 1)])
        # t=35 is inside the first switch window (boots take ~6 s, the loop
        # steps every 30 s), and node-0/node-1 host the first placements.
        result = Scenario(
            nodes=nodes,
            workloads=[w0],
            policy="consolidation",
            optimizer_timeout=OPTIMIZER_TIMEOUT_S,
            faults=FaultSchedule().node_crash("node-0", at=35.0),
        ).run()
        crash = result.faults[0]
        assert crash.detected_at >= crash.time
        assert result.unfinished_vjobs == []


class TestChurnPressure:
    def test_arrival_burst_exceeding_capacity_drains(self):
        """A burst of 6 small vjobs on a 2-node cluster cannot run at once;
        the loop suspends/queues the overflow and everything completes."""
        nodes = make_working_nodes(2, cpu_capacity=2, memory_capacity=3584)
        generator = ChurnGenerator(
            seed=5,
            vm_count_choices=(2,),
            memory_choices=(512,),
            problem_classes=(ProblemClass.W,),
        )
        workloads = generator.burst(6, at=0.0)
        peak_demand = sum(w.peak_cpu_demand for w in workloads)
        capacity = sum(n.cpu_capacity for n in nodes)
        assert peak_demand > capacity  # the burst genuinely oversubscribes

        result = Scenario(
            nodes=nodes,
            workloads=workloads,
            policy="consolidation",
            optimizer_timeout=OPTIMIZER_TIMEOUT_S,
        ).run()
        assert result.unfinished_vjobs == []
        assert len(result.completion_times) == 6
        # completions are spread out: the burst could not run all at once
        assert max(result.completion_times.values()) > min(
            result.completion_times.values()
        )

    def test_churn_stream_under_crash_all_vjobs_complete(self):
        nodes = make_working_nodes(4, cpu_capacity=2, memory_capacity=3584)
        generator = ChurnGenerator(
            seed=11,
            mean_interarrival_s=45.0,
            vm_count_choices=(2, 3),
            problem_classes=(ProblemClass.W,),
        )
        result = Scenario(
            nodes=nodes,
            workloads=generator.workloads(5),
            policy="consolidation",
            optimizer_timeout=OPTIMIZER_TIMEOUT_S,
            faults=FaultSchedule().node_crash("node-1", at=120.0),
            sla_factor=10.0,
        ).run()
        assert result.unfinished_vjobs == []
        assert result.sla_violations == []
        assert result.repair_latencies  # the crash hit someone


class TestSlowdownAndDelayedBoot:
    def test_slowdown_inflates_makespan(self):
        nodes = make_working_nodes(2, cpu_capacity=2, memory_capacity=3584)

        def build(faults=None):
            return Scenario(
                nodes=nodes,
                workloads=[simple_workload("w0", 0, [(300.0, 1)])],
                policy="consolidation",
                optimizer_timeout=OPTIMIZER_TIMEOUT_S,
                faults=faults,
            )

        baseline = build().run()
        slowdown = FaultSchedule()
        for node in ("node-0", "node-1"):
            slowdown.node_slowdown(node, at=0.0, duration=10_000.0, factor=2.0)
        slowed = build(slowdown).run()
        assert slowed.makespan > baseline.makespan
        assert slowed.unfinished_vjobs == []

    def test_crash_before_boot_cancels_the_boot(self):
        nodes = make_working_nodes(2, cpu_capacity=2, memory_capacity=3584)
        schedule = (
            FaultSchedule()
            .delayed_boot("node-1", until=120.0)
            .node_crash("node-1", at=60.0)
        )
        scenario = Scenario(
            nodes=nodes,
            workloads=[simple_workload("w0", 0, [(180.0, 1)])],
            optimizer_timeout=OPTIMIZER_TIMEOUT_S,
            faults=schedule,
        )
        loop = scenario.build()
        result = loop.run()
        # the node died before booting: it must never join the fleet
        assert not loop.cluster.configuration.has_node("node-1")
        details = {f.kind: f.detail for f in result.faults}
        assert details["node_crash"] == "crashed before boot; boot cancelled"
        assert "no pending boot" in details["delayed_boot"]
        assert result.unfinished_vjobs == []

    def test_delayed_boot_node_joins_mid_run(self):
        nodes = make_working_nodes(2, cpu_capacity=1, memory_capacity=2048)
        w0 = simple_workload("w0", 0, [(180.0, 1)])
        scenario = Scenario(
            nodes=nodes,
            workloads=[w0],
            policy="consolidation",
            optimizer_timeout=OPTIMIZER_TIMEOUT_S,
            faults=FaultSchedule().delayed_boot("node-1", until=90.0),
        )
        loop = scenario.build()
        # held back at construction time
        assert not loop.cluster.configuration.has_node("node-1")
        result = loop.run()
        assert loop.cluster.configuration.has_node("node-1")
        assert [f.kind for f in result.faults] == ["delayed_boot"]
        assert result.unfinished_vjobs == []


class TestSLAAccounting:
    def test_sla_violation_reported_when_turnaround_blows_budget(self):
        nodes = make_working_nodes(1, cpu_capacity=1, memory_capacity=2048)
        # two single-VM vjobs competing for one CPU: the second one waits
        # for the first to finish, far beyond a tight SLA.
        vjob_a = make_vjob("a", vm_count=1, memory=512, priority=0)
        vjob_b = make_vjob("b", vm_count=1, memory=512, priority=1)
        workloads = [
            VJobWorkload(
                vjob=vjob_a,
                traces={vjob_a.vms[0].name: alternating_trace([(300.0, 1)])},
            ),
            VJobWorkload(
                vjob=vjob_b,
                traces={vjob_b.vms[0].name: alternating_trace([(60.0, 1)])},
            ),
        ]
        result = Scenario(
            nodes=nodes,
            workloads=workloads,
            policy="consolidation",
            optimizer_timeout=OPTIMIZER_TIMEOUT_S,
            sla_factor=1.5,
        ).run()
        assert "b" in result.sla_violations
        assert result.unfinished_vjobs == []

    def test_no_sla_factor_means_no_accounting(self):
        nodes = make_working_nodes(2, cpu_capacity=2, memory_capacity=3584)
        result = Scenario(
            nodes=nodes,
            workloads=[simple_workload("w0", 0, [(120.0, 1)])],
            optimizer_timeout=OPTIMIZER_TIMEOUT_S,
        ).run()
        assert result.sla_violations == []


class TestInjectorLifecycle:
    def test_scenario_builds_fresh_injector_per_run(self):
        nodes = make_working_nodes(3, cpu_capacity=2, memory_capacity=3584)
        schedule = FaultSchedule().node_crash("node-0", at=60.0)

        def fresh_workloads():
            return [simple_workload("w0", 0, [(120.0, 1)])]

        scenario = Scenario(
            nodes=nodes,
            workloads=fresh_workloads(),
            optimizer_timeout=OPTIMIZER_TIMEOUT_S,
            faults=schedule,
        )
        first = scenario.run()
        scenario.workloads = fresh_workloads()
        second = scenario.run()
        # both runs observed the crash: the injector state did not leak
        assert [f.kind for f in first.faults] == ["node_crash"]
        assert [f.kind for f in second.faults] == ["node_crash"]

    def test_with_faults_takes_fresh_workloads_for_paired_runs(self):
        nodes = make_working_nodes(3, cpu_capacity=2, memory_capacity=3584)

        def fresh():
            return [simple_workload("w0", 0, [(120.0, 1)])]

        base = Scenario(
            nodes=nodes, workloads=fresh(), optimizer_timeout=OPTIMIZER_TIMEOUT_S
        )
        baseline = base.run()
        chaotic = base.with_faults(
            FaultSchedule().node_crash("node-0", at=30.0), workloads=fresh()
        ).run()
        assert baseline.unfinished_vjobs == []
        assert chaotic.makespan >= baseline.makespan
        assert [f.kind for f in chaotic.faults] == ["node_crash"]

    def test_loop_accepts_prebuilt_injector(self):
        from repro.api import ControlLoop

        nodes = make_working_nodes(3, cpu_capacity=2, memory_capacity=3584)
        injector = FaultInjector(FaultSchedule().node_crash("node-2", at=30.0))
        loop = ControlLoop(
            nodes=nodes,
            workloads=[simple_workload("w0", 0, [(90.0, 1)])],
            optimizer_timeout=OPTIMIZER_TIMEOUT_S,
            fault_injector=injector,
        )
        result = loop.run()
        assert [f.target for f in result.faults] == ["node-2"]

    def test_crashed_vjob_state_is_waiting_until_replanned(self):
        """White-box: the crash handler resets the whole vjob consistently."""
        from repro.api import ControlLoop

        nodes = make_working_nodes(2, cpu_capacity=2, memory_capacity=3584)
        workload = simple_workload("w0", 0, [(600.0, 1)])
        injector = FaultInjector(FaultSchedule())
        loop = ControlLoop(
            nodes=nodes,
            workloads=[workload],
            optimizer_timeout=OPTIMIZER_TIMEOUT_S,
            fault_injector=injector,
        )
        # run one decision round by hand: submit and place the vjob
        loop._submit_pending(0.0)
        configuration = loop.cluster.configuration
        for index, vm in enumerate(workload.vjob.vm_names):
            configuration.set_running(vm, f"node-{index}")
        workload.vjob.run()

        affected = loop._crash_node("node-0", crash_time=42.0)
        assert affected == ("w0",)
        assert workload.vjob.state is VJobState.WAITING
        for vm in workload.vjob.vm_names:
            assert configuration.state_of(vm).value == "waiting"
        assert not configuration.has_node("node-0")
        assert loop._repair_pending == {"w0": 42.0}
