"""Tests of the virtual machine model."""

import pytest

from repro.model.resources import ResourceVector
from repro.model.vm import VirtualMachine, VMImage, VMState


class TestVirtualMachine:
    def test_demand_combines_cpu_and_memory(self):
        vm = VirtualMachine(name="vm1", memory=1024, cpu_demand=1)
        assert vm.demand == ResourceVector(1, 1024)

    def test_idle_vm_has_zero_cpu_demand(self):
        vm = VirtualMachine(name="vm1", memory=512)
        assert vm.demand == ResourceVector(0, 512)

    def test_with_cpu_demand_returns_new_instance(self):
        vm = VirtualMachine(name="vm1", memory=512, cpu_demand=0)
        busy = vm.with_cpu_demand(1)
        assert busy.cpu_demand == 1
        assert vm.cpu_demand == 0
        assert busy.name == vm.name and busy.memory == vm.memory

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            VirtualMachine(name="", memory=512)

    def test_rejects_non_positive_memory(self):
        with pytest.raises(ValueError):
            VirtualMachine(name="vm1", memory=0)
        with pytest.raises(ValueError):
            VirtualMachine(name="vm1", memory=-512)

    def test_rejects_negative_cpu_demand(self):
        with pytest.raises(ValueError):
            VirtualMachine(name="vm1", memory=512, cpu_demand=-1)

    def test_vjob_tag(self):
        vm = VirtualMachine(name="j1.vm0", memory=512, vjob="j1")
        assert vm.vjob == "j1"

    def test_states_enum_values(self):
        assert VMState.RUNNING.value == "running"
        assert VMState.SLEEPING.value == "sleeping"
        assert VMState.WAITING.value == "waiting"
        assert VMState.TERMINATED.value == "terminated"


class TestVMImage:
    def test_is_local_to(self):
        image = VMImage(vm_name="vm1", node_name="node-3", size_mb=1024)
        assert image.is_local_to("node-3")
        assert not image.is_local_to("node-4")
