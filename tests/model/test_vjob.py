"""Tests of the vjob life cycle (Figure 2)."""

import pytest

from repro.model.errors import InvalidStateTransition
from repro.model.resources import ResourceVector
from repro.model.vjob import VJob, VJobState, index_vms_by_vjob
from repro.model.vm import VirtualMachine


def make_vjob(name="j1", vm_count=2, memory=512, cpu=1) -> VJob:
    vms = [
        VirtualMachine(name=f"{name}.vm{i}", memory=memory, cpu_demand=cpu, vjob=name)
        for i in range(vm_count)
    ]
    return VJob(name=name, vms=vms)


class TestLifeCycle:
    def test_submission_state_is_waiting(self):
        assert make_vjob().state is VJobState.WAITING

    def test_run_from_waiting(self):
        vjob = make_vjob()
        vjob.run()
        assert vjob.state is VJobState.RUNNING
        assert vjob.is_running

    def test_suspend_resume_cycle(self):
        vjob = make_vjob()
        vjob.run()
        vjob.suspend()
        assert vjob.state is VJobState.SLEEPING
        vjob.resume()
        assert vjob.state is VJobState.RUNNING

    def test_terminate_from_running(self):
        vjob = make_vjob()
        vjob.run()
        vjob.terminate()
        assert vjob.is_terminated

    def test_terminate_from_waiting(self):
        vjob = make_vjob()
        vjob.terminate()
        assert vjob.is_terminated

    def test_cannot_suspend_a_waiting_vjob(self):
        with pytest.raises(InvalidStateTransition):
            make_vjob().suspend()

    def test_cannot_run_a_terminated_vjob(self):
        vjob = make_vjob()
        vjob.terminate()
        with pytest.raises(InvalidStateTransition):
            vjob.run()

    def test_ready_pseudo_state_groups_waiting_and_sleeping(self):
        vjob = make_vjob()
        assert vjob.is_ready  # waiting
        vjob.run()
        assert not vjob.is_ready
        vjob.suspend()
        assert vjob.is_ready  # sleeping
        vjob.resume()
        vjob.terminate()
        assert not vjob.is_ready

    def test_transition_error_reports_states(self):
        vjob = make_vjob()
        with pytest.raises(InvalidStateTransition) as excinfo:
            vjob.resume()
        assert "waiting" in str(excinfo.value)
        assert "running" in str(excinfo.value)


class TestVJobProperties:
    def test_total_demand(self):
        vjob = make_vjob(vm_count=3, memory=1024, cpu=1)
        assert vjob.total_demand == ResourceVector(3, 3072)

    def test_total_memory(self):
        assert make_vjob(vm_count=2, memory=2048).total_memory == 4096

    def test_vm_names(self):
        assert make_vjob(name="job", vm_count=2).vm_names == ("job.vm0", "job.vm1")

    def test_requires_at_least_one_vm(self):
        with pytest.raises(ValueError):
            VJob(name="empty", vms=[])

    def test_rejects_vm_tagged_for_another_vjob(self):
        foreign = VirtualMachine(name="x", memory=512, vjob="other")
        with pytest.raises(ValueError):
            VJob(name="j1", vms=[foreign])

    def test_accepts_untagged_vms(self):
        vm = VirtualMachine(name="x", memory=512)
        vjob = VJob(name="j1", vms=[vm])
        assert vjob.vm_names == ("x",)


class TestIndexVmsByVjob:
    def test_mapping(self):
        j1, j2 = make_vjob("j1", 2), make_vjob("j2", 1)
        mapping = index_vms_by_vjob([j1, j2])
        assert mapping == {"j1.vm0": "j1", "j1.vm1": "j1", "j2.vm0": "j2"}
