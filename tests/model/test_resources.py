"""Tests of the resource vector arithmetic."""

import pytest

from repro.model.resources import ResourceVector, ZERO


class TestArithmetic:
    def test_addition(self):
        assert ResourceVector(1, 512) + ResourceVector(2, 256) == ResourceVector(3, 768)

    def test_subtraction(self):
        assert ResourceVector(3, 768) - ResourceVector(2, 256) == ResourceVector(1, 512)

    def test_subtraction_can_go_negative(self):
        result = ResourceVector(1, 100) - ResourceVector(2, 300)
        assert result == ResourceVector(-1, -200)
        assert not result.is_non_negative()

    def test_scalar_multiplication(self):
        assert ResourceVector(1, 512) * 3 == ResourceVector(3, 1536)
        assert 2 * ResourceVector(2, 10) == ResourceVector(4, 20)

    def test_negation(self):
        assert -ResourceVector(1, 2) == ResourceVector(-1, -2)

    def test_total(self):
        vectors = [ResourceVector(1, 100), ResourceVector(0, 200), ResourceVector(2, 50)]
        assert ResourceVector.total(vectors) == ResourceVector(3, 350)

    def test_total_of_empty_iterable_is_zero(self):
        assert ResourceVector.total([]) == ZERO


class TestComparisons:
    def test_fits_in_true_when_both_dimensions_fit(self):
        assert ResourceVector(1, 512).fits_in(ResourceVector(2, 1024))

    def test_fits_in_false_when_cpu_exceeds(self):
        assert not ResourceVector(3, 512).fits_in(ResourceVector(2, 1024))

    def test_fits_in_false_when_memory_exceeds(self):
        assert not ResourceVector(1, 2048).fits_in(ResourceVector(2, 1024))

    def test_fits_in_accepts_equality(self):
        assert ResourceVector(2, 1024).fits_in(ResourceVector(2, 1024))

    def test_dominates(self):
        assert ResourceVector(2, 1024).dominates(ResourceVector(1, 512))
        assert not ResourceVector(2, 100).dominates(ResourceVector(1, 512))

    def test_is_zero(self):
        assert ZERO.is_zero()
        assert not ResourceVector(0, 1).is_zero()


class TestHelpers:
    def test_as_tuple_and_iter(self):
        vector = ResourceVector(2, 4096)
        assert vector.as_tuple() == (2, 4096)
        assert tuple(vector) == (2, 4096)

    def test_immutability(self):
        vector = ResourceVector(1, 2)
        with pytest.raises(AttributeError):
            vector.cpu = 5  # type: ignore[misc]

    def test_defaults_are_zero(self):
        assert ResourceVector() == ZERO
