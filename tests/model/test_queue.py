"""Tests of the FCFS vjob queue."""

import pytest

from repro.model.errors import DuplicateElementError, ModelError
from repro.model.queue import VJobQueue
from repro.model.vjob import VJob, VJobState
from repro.model.vm import VirtualMachine


def vjob(name, priority=0, submitted_at=0.0):
    return VJob(
        name=name,
        vms=[VirtualMachine(name=f"{name}.vm0", memory=512, vjob=name)],
        priority=priority,
        submitted_at=submitted_at,
    )


class TestSubmission:
    def test_duplicate_submission_rejected(self):
        queue = VJobQueue([vjob("a")])
        with pytest.raises(DuplicateElementError):
            queue.submit(vjob("a"))

    def test_len_and_contains(self):
        queue = VJobQueue([vjob("a"), vjob("b")])
        assert len(queue) == 2
        assert "a" in queue and "c" not in queue

    def test_remove(self):
        queue = VJobQueue([vjob("a")])
        removed = queue.remove("a")
        assert removed.name == "a"
        assert "a" not in queue
        with pytest.raises(ModelError):
            queue.remove("a")

    def test_get_unknown_raises(self):
        with pytest.raises(ModelError):
            VJobQueue().get("nope")


class TestOrdering:
    def test_priority_order(self):
        queue = VJobQueue([vjob("low", priority=5), vjob("high", priority=1)])
        assert [v.name for v in queue.ordered()] == ["high", "low"]

    def test_submission_time_breaks_priority_ties(self):
        queue = VJobQueue(
            [vjob("late", submitted_at=10.0), vjob("early", submitted_at=1.0)]
        )
        assert [v.name for v in queue.ordered()] == ["early", "late"]

    def test_insertion_order_breaks_remaining_ties(self):
        queue = VJobQueue([vjob("first"), vjob("second")])
        assert [v.name for v in queue.ordered()] == ["first", "second"]

    def test_iteration_follows_order(self):
        queue = VJobQueue([vjob("b", priority=2), vjob("a", priority=1)])
        assert [v.name for v in queue] == ["a", "b"]


class TestStateViews:
    def test_pending_excludes_terminated(self):
        a, b = vjob("a"), vjob("b")
        queue = VJobQueue([a, b])
        a.terminate()
        assert [v.name for v in queue.pending()] == ["b"]
        assert [v.name for v in queue.terminated()] == ["a"]

    def test_ready_and_running_views(self):
        a, b, c = vjob("a"), vjob("b"), vjob("c")
        b.run()
        c.run()
        c.suspend()
        queue = VJobQueue([a, b, c])
        assert {v.name for v in queue.ready()} == {"a", "c"}
        assert [v.name for v in queue.running()] == ["b"]

    def test_all_terminated(self):
        a, b = vjob("a"), vjob("b")
        queue = VJobQueue([a, b])
        assert not queue.all_terminated()
        a.terminate()
        b.terminate()
        assert queue.all_terminated()

    def test_vjob_of_vm(self):
        a = vjob("a")
        queue = VJobQueue([a])
        assert queue.vjob_of_vm("a.vm0") is a
        assert queue.vjob_of_vm("ghost") is None
