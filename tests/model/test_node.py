"""Tests of the node model."""

import pytest

from repro.model.node import Node, NodeRole, make_working_nodes
from repro.model.resources import ResourceVector


class TestNode:
    def test_capacity_vector(self):
        node = Node(name="n1", cpu_capacity=2, memory_capacity=4096)
        assert node.capacity == ResourceVector(2, 4096)

    def test_default_role_is_working(self):
        assert Node(name="n1").role is NodeRole.WORKING
        assert Node(name="n1").is_working_node

    def test_storage_node_is_not_working(self):
        node = Node(name="nfs1", role=NodeRole.STORAGE)
        assert not node.is_working_node

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Node(name="")

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Node(name="n1", cpu_capacity=-1)
        with pytest.raises(ValueError):
            Node(name="n1", memory_capacity=-5)

    def test_str_is_name(self):
        assert str(Node(name="node-7")) == "node-7"

    def test_nodes_are_immutable(self):
        node = Node(name="n1")
        with pytest.raises(AttributeError):
            node.cpu_capacity = 8  # type: ignore[misc]


class TestMakeWorkingNodes:
    def test_count_and_names(self):
        nodes = make_working_nodes(4, prefix="host")
        assert len(nodes) == 4
        assert [n.name for n in nodes] == ["host-0", "host-1", "host-2", "host-3"]

    def test_homogeneous_capacities(self):
        nodes = make_working_nodes(3, cpu_capacity=4, memory_capacity=8192)
        assert all(n.capacity == ResourceVector(4, 8192) for n in nodes)

    def test_zero_nodes(self):
        assert make_working_nodes(0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            make_working_nodes(-1)
