"""Tests of configurations and their viability (Section 3.2, Figure 5)."""

import pytest

from repro.model.configuration import Configuration
from repro.model.errors import (
    DuplicateElementError,
    NonViableConfigurationError,
    UnknownNodeError,
    UnknownVMError,
)
from repro.model.node import make_working_nodes
from repro.model.resources import ResourceVector
from repro.model.vm import VirtualMachine, VMState

from repro.testing import make_vm


class TestPopulation:
    def test_duplicate_node_rejected(self, three_nodes):
        configuration = Configuration(nodes=three_nodes)
        with pytest.raises(DuplicateElementError):
            configuration.add_node(three_nodes[0])

    def test_duplicate_vm_rejected(self, empty_configuration):
        empty_configuration.add_vm(make_vm("vm1"))
        with pytest.raises(DuplicateElementError):
            empty_configuration.add_vm(make_vm("vm1"))

    def test_new_vm_starts_waiting(self, empty_configuration):
        empty_configuration.add_vm(make_vm("vm1"))
        assert empty_configuration.state_of("vm1") is VMState.WAITING

    def test_unknown_lookups_raise(self, empty_configuration):
        with pytest.raises(UnknownVMError):
            empty_configuration.vm("ghost")
        with pytest.raises(UnknownNodeError):
            empty_configuration.node("ghost")
        with pytest.raises(UnknownVMError):
            empty_configuration.state_of("ghost")

    def test_replace_vm_updates_demand_only(self, loaded_configuration):
        updated = loaded_configuration.vm("idle").with_cpu_demand(1)
        loaded_configuration.replace_vm(updated)
        assert loaded_configuration.vm("idle").cpu_demand == 1
        assert loaded_configuration.location_of("idle") == "node-1"


class TestStateChanges:
    def test_set_running_places_vm(self, empty_configuration):
        empty_configuration.add_vm(make_vm("vm1"))
        empty_configuration.set_running("vm1", "node-2")
        assert empty_configuration.state_of("vm1") is VMState.RUNNING
        assert empty_configuration.location_of("vm1") == "node-2"

    def test_set_sleeping_remembers_image_location(self, loaded_configuration):
        loaded_configuration.set_sleeping("busy")
        assert loaded_configuration.state_of("busy") is VMState.SLEEPING
        assert loaded_configuration.image_location_of("busy") == "node-0"
        assert loaded_configuration.location_of("busy") is None

    def test_set_sleeping_with_explicit_image_node(self, loaded_configuration):
        loaded_configuration.set_sleeping("busy", image_node="node-2")
        assert loaded_configuration.image_location_of("busy") == "node-2"

    def test_resume_clears_image(self, loaded_configuration):
        loaded_configuration.set_sleeping("busy")
        loaded_configuration.set_running("busy", "node-2")
        assert loaded_configuration.image_location_of("busy") is None

    def test_migrate_moves_running_vm(self, loaded_configuration):
        loaded_configuration.migrate("busy", "node-2")
        assert loaded_configuration.location_of("busy") == "node-2"
        assert loaded_configuration.state_of("busy") is VMState.RUNNING

    def test_migrate_requires_running_state(self, loaded_configuration):
        loaded_configuration.set_sleeping("busy")
        with pytest.raises(NonViableConfigurationError):
            loaded_configuration.migrate("busy", "node-2")

    def test_set_terminated_clears_everything(self, loaded_configuration):
        loaded_configuration.set_terminated("busy")
        assert loaded_configuration.state_of("busy") is VMState.TERMINATED
        assert loaded_configuration.location_of("busy") is None
        assert "busy" not in loaded_configuration.running_vms()


class TestResourceAccounting:
    def test_usage_of_node(self, loaded_configuration):
        assert loaded_configuration.usage_of("node-0") == ResourceVector(1, 1024)
        assert loaded_configuration.usage_of("node-2") == ResourceVector(0, 0)

    def test_free_capacity(self, loaded_configuration):
        assert loaded_configuration.free_capacity("node-0") == ResourceVector(0, 1024)

    def test_can_host_checks_both_dimensions(self, loaded_configuration):
        small = make_vm("small", memory=512, cpu=0)
        busy = make_vm("other", memory=512, cpu=1)
        assert loaded_configuration.can_host("node-0", small)
        assert not loaded_configuration.can_host("node-0", busy)  # CPU exhausted

    def test_total_usage_and_capacity(self, loaded_configuration):
        assert loaded_configuration.total_usage() == ResourceVector(1, 1536)
        assert loaded_configuration.total_capacity() == ResourceVector(3, 6144)


class TestViability:
    def test_viable_configuration(self, loaded_configuration):
        assert loaded_configuration.is_viable()
        loaded_configuration.check_viable()

    def test_cpu_overload_detected(self, three_nodes):
        """Figure 5(a): two VMs requiring a full CPU on a uniprocessor node."""
        configuration = Configuration(nodes=three_nodes)
        configuration.add_vm(make_vm("vm2", memory=512, cpu=1))
        configuration.add_vm(make_vm("vm3", memory=512, cpu=1))
        configuration.set_running("vm2", "node-0")
        configuration.set_running("vm3", "node-0")
        assert not configuration.is_viable()
        violations = configuration.viability_violations()
        assert len(violations) == 1
        assert violations[0].node == "node-0"
        assert violations[0].cpu_excess == 1
        assert violations[0].memory_excess == 0
        with pytest.raises(NonViableConfigurationError):
            configuration.check_viable()

    def test_memory_overload_detected(self, three_nodes):
        configuration = Configuration(nodes=three_nodes)
        configuration.add_vm(make_vm("big1", memory=1536))
        configuration.add_vm(make_vm("big2", memory=1024))
        configuration.set_running("big1", "node-0")
        configuration.set_running("big2", "node-0")
        assert not configuration.is_viable()
        assert configuration.viability_violations()[0].memory_excess == 512

    def test_sleeping_vms_do_not_consume_resources(self, three_nodes):
        configuration = Configuration(nodes=three_nodes)
        configuration.add_vm(make_vm("a", memory=2048, cpu=1))
        configuration.add_vm(make_vm("b", memory=2048, cpu=1))
        configuration.set_running("a", "node-0")
        configuration.set_sleeping("b", "node-0")
        assert configuration.is_viable()


class TestCopiesAndComparisons:
    def test_copy_is_independent(self, loaded_configuration):
        clone = loaded_configuration.copy()
        clone.set_sleeping("busy")
        assert loaded_configuration.state_of("busy") is VMState.RUNNING
        assert clone.state_of("busy") is VMState.SLEEPING

    def test_same_assignment(self, loaded_configuration):
        clone = loaded_configuration.copy()
        assert loaded_configuration.same_assignment(clone)
        clone.migrate("busy", "node-2")
        assert not loaded_configuration.same_assignment(clone)

    def test_equality(self, loaded_configuration):
        assert loaded_configuration == loaded_configuration.copy()
        other = loaded_configuration.copy()
        other.set_sleeping("idle")
        assert loaded_configuration != other

    def test_configurations_are_unhashable(self, loaded_configuration):
        with pytest.raises(TypeError):
            hash(loaded_configuration)

    def test_vms_on_and_iter_running(self, loaded_configuration):
        assert loaded_configuration.vms_on("node-0") == ("busy",)
        pairs = {(vm.name, node.name) for vm, node in loaded_configuration.iter_running()}
        assert pairs == {("busy", "node-0"), ("idle", "node-1")}
