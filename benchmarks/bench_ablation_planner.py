"""Ablations of the design choices called out in DESIGN.md.

Three knobs of the cluster-wide context switch are switched off one at a time
on the Figure 10 workload to quantify their contribution:

* **CP optimization** — replace the branch-and-bound placement with the FFD
  baseline (what Figure 10 measures), and with the first viable CP solution;
* **optimizer time budget** — shrink the search budget and watch the plan cost;
* **vjob consistency regrouping** — disable the pass that gathers the resumes
  of a vjob in a single pool and count how many pools the resumes span.
"""

from __future__ import annotations

from repro.analysis.report import format_fraction, series
from repro.core import ContextSwitchOptimizer, build_plan, plan_cost
from repro.core.actions import ActionKind
from repro.core.planner import PlannerOptions, ReconfigurationPlanner
from repro import get_decision_module
from repro.workloads import TraceConfigurationGenerator

VM_COUNT = 162
SEED = 2024


def _scenario():
    scenario = TraceConfigurationGenerator(seed=SEED).generate(VM_COUNT)
    decision = get_decision_module("consolidation").decide(scenario.configuration, scenario.queue)
    return scenario, decision


def bench_ablation_optimizer_timeout(benchmark):
    """Plan cost as a function of the CP time budget."""
    scenario, decision = _scenario()

    def sweep():
        results = []
        for timeout in (0.2, 1.0, 3.0):
            optimizer = ContextSwitchOptimizer(timeout=timeout)
            result = optimizer.optimize(
                scenario.configuration,
                decision.vm_states,
                vjob_of_vm=scenario.vjob_of_vm(),
                fallback_target=decision.fallback_target,
            )
            results.append((timeout, result.cost))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    ffd_cost = plan_cost(
        build_plan(scenario.configuration, decision.fallback_target, scenario.vjob_of_vm())
    ).total

    rows = [("FFD baseline", ffd_cost, "-")]
    for timeout, cost in results:
        rows.append((f"CP, {timeout:.1f}s budget", cost, format_fraction(1 - cost / ffd_cost)))
    print()
    print(series(
        f"Ablation — optimizer time budget ({VM_COUNT} VMs, 200 nodes)",
        ["strategy", "plan cost", "reduction vs FFD"],
        rows,
    ))

    costs = [cost for _, cost in results]
    # more budget never hurts, and even the smallest budget beats FFD
    assert costs == sorted(costs, reverse=True) or len(set(costs)) == 1
    assert costs[-1] <= ffd_cost


def bench_ablation_first_solution_vs_optimum(benchmark):
    """Stopping at the first viable CP solution vs searching for the optimum."""
    scenario, decision = _scenario()

    def run(first_only: bool):
        optimizer = ContextSwitchOptimizer(timeout=3.0, first_solution_only=first_only)
        return optimizer.optimize(
            scenario.configuration,
            decision.vm_states,
            vjob_of_vm=scenario.vjob_of_vm(),
            fallback_target=decision.fallback_target,
        ).cost

    first_cost = benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)
    best_cost = run(False)

    print()
    print(series(
        "Ablation — first viable solution vs branch-and-bound",
        ["strategy", "plan cost"],
        [("first viable CP solution", first_cost), ("branch-and-bound (3s)", best_cost)],
    ))
    assert best_cost <= first_cost


def bench_ablation_vjob_consistency(benchmark):
    """Effect of the resume-regrouping pass on the structure of the plans."""
    scenario, decision = _scenario()
    optimizer = ContextSwitchOptimizer(timeout=2.0)
    result = optimizer.optimize(
        scenario.configuration,
        decision.vm_states,
        vjob_of_vm=scenario.vjob_of_vm(),
        fallback_target=decision.fallback_target,
    )
    mapping = scenario.vjob_of_vm()

    def build(consistency: bool):
        planner = ReconfigurationPlanner(
            PlannerOptions(enforce_vjob_consistency=consistency)
        )
        return planner.build(scenario.configuration, result.target, mapping)

    grouped = benchmark.pedantic(build, args=(True,), rounds=1, iterations=1)
    ungrouped = build(False)

    def pools_spanned(plan):
        per_vjob: dict[str, set[int]] = {}
        for index, pool in enumerate(plan.pools):
            for action in pool:
                if action.kind is ActionKind.RESUME:
                    per_vjob.setdefault(mapping[action.vm], set()).add(index)
        if not per_vjob:
            return 0.0
        return sum(len(pools) for pools in per_vjob.values()) / len(per_vjob)

    rows = [
        ("with regrouping", len(grouped.pools), f"{pools_spanned(grouped):.2f}"),
        ("without regrouping", len(ungrouped.pools), f"{pools_spanned(ungrouped):.2f}"),
    ]
    print()
    print(series(
        "Ablation — vjob consistency regrouping",
        ["variant", "pools in plan", "avg pools spanned by a vjob's resumes"],
        rows,
    ))

    # with the pass enabled, the resumes of a vjob always share a single pool
    assert pools_spanned(grouped) <= 1.0
    assert pools_spanned(ungrouped) >= pools_spanned(grouped)
    # both plans reach the same target
    grouped.check_reaches(result.target)
    ungrouped.check_reaches(result.target)
