"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation and
prints it as a plain-text series (the same tables are summarized in
EXPERIMENTS.md).  The heavyweight simulations are computed once per session and
shared between the benchmarks that read different figures out of them.
"""

from __future__ import annotations

import pytest

from repro import Scenario
from repro.workloads import paper_cluster_nodes, paper_experiment_vjobs


#: Size of the cluster campaign (the paper runs 8 vjobs x 9 VMs on 11 nodes).
CAMPAIGN_VJOBS = 8
CAMPAIGN_VMS_PER_VJOB = 9
OPTIMIZER_TIMEOUT_S = 3.0


@pytest.fixture(scope="session")
def campaign_workloads():
    return paper_experiment_vjobs(count=CAMPAIGN_VJOBS, vm_count=CAMPAIGN_VMS_PER_VJOB)


@pytest.fixture(scope="session")
def campaign_nodes():
    return paper_cluster_nodes()


@pytest.fixture(scope="session")
def campaign_scenario(campaign_nodes, campaign_workloads):
    """The Section 5.2 campaign described once, policy selected per run."""
    return Scenario(
        nodes=campaign_nodes,
        workloads=campaign_workloads,
        policy="consolidation",
        optimizer_timeout=OPTIMIZER_TIMEOUT_S,
    )


@pytest.fixture(scope="session")
def entropy_run(campaign_scenario):
    """The Section 5.2 campaign under Entropy (dynamic consolidation)."""
    return campaign_scenario.run()


@pytest.fixture(scope="session")
def static_run(campaign_scenario):
    """The same campaign under the FCFS static-allocation baseline."""
    # Analytic baseline: does not mutate vjob state, safe to share workloads
    # with the control-loop run.
    return campaign_scenario.run_static()
