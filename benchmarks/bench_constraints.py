"""Constraint-compilation overhead — constrained vs unconstrained solves.

The placement-constraint subsystem (``repro.constraints``) injects extra
propagators (disequalities, Among, counting constraints) and domain
restrictions into the optimizer's CP model.  This benchmark measures what
that costs on the paper-scale instances: the Section 5.1 generated scenarios
(200 working nodes) at 100 and 200 VMs, solved once without constraints and
once under a representative catalog mix —

* ``Spread`` over the VMs of the three largest vjobs (HA),
* ``Ban`` of one vjob from five nodes (maintenance),
* ``Fence`` of one vjob inside three quarters of the fleet (licensing),
* ``RunningCapacity`` capping twenty nodes (blast radius).

Both solves disable the greedy incumbent, share the per-tier node budget of
``bench_solver_scaling`` and stop at the **first viable placement**
(``first_solution_only``) — the planning-latency question a constrained
control loop actually asks per switch.  The full branch-and-bound proof is
deliberately *not* compared: an unconstrained instance is refuted almost for
free once the keep-everything-in-place incumbent is found, while a
constrained optimum genuinely costs more to prove, so the proof-time ratio
measures problem hardness, not compilation overhead.  With identical descent
work, the wall-clock ratio (``overhead``) isolates the propagation cost of
the compiled constraints.  The PR4 acceptance gate is **median overhead
< 2x on the 200-VM tier** — checked by ``bench_constraints_overhead_gate``
when this module runs under pytest, and recorded in ``BENCH_PR4.json`` by
the harness.

Run standalone (``python benchmarks/bench_constraints.py``) or through
``benchmarks/harness.py``.
"""

from __future__ import annotations

import json
import statistics
import time
from typing import Optional, Sequence

from repro.constraints import Ban, Fence, PlacementConstraint, RunningCapacity, Spread
from repro.core.optimizer import ContextSwitchOptimizer
from repro.decision import ConsolidationDecisionModule
from repro.workloads import TraceConfigurationGenerator

from bench_solver_scaling import default_node_limit

#: VM counts of the sweep (200 working nodes, as in Section 5.1); the 200-VM
#: tier is the acceptance tier.
TIERS = (100, 200)
SAMPLES_PER_TIER = 3
TIMEOUT_S = 120.0
#: The acceptance gate: constrained solve overhead on the largest tier.
MAX_OVERHEAD = 2.0


def representative_constraints(scenario) -> list[PlacementConstraint]:
    """A catalog mix scaled to the generated scenario (always satisfiable:
    the restrictions stay far below the fleet's slack)."""
    vjobs = sorted(
        (w.vjob for w in scenario.workloads),
        key=lambda vjob: len(vjob.vm_names),
        reverse=True,
    )
    node_names = list(scenario.configuration.node_names)
    constraints: list[PlacementConstraint] = []
    for vjob in vjobs[:3]:
        constraints.append(Spread(vjob.vm_names))
    if len(vjobs) > 3:
        constraints.append(Ban(vjobs[3].vm_names, node_names[:5]))
    if len(vjobs) > 4:
        constraints.append(
            Fence(vjobs[4].vm_names, node_names[: (3 * len(node_names)) // 4])
        )
    constraints.append(RunningCapacity(node_names[:20], 40))
    return constraints


def _solve(scenario, decision, constraints, timeout, node_limit) -> dict:
    optimizer = ContextSwitchOptimizer(
        timeout=timeout,
        use_greedy_bound=False,
        node_limit=node_limit,
        first_solution_only=True,
    )
    started = time.monotonic()
    result = optimizer.optimize(
        scenario.configuration,
        decision.vm_states,
        vjob_of_vm=scenario.vjob_of_vm(),
        fallback_target=decision.fallback_target,
        constraints=constraints,
    )
    total_seconds = time.monotonic() - started
    stats = result.statistics
    record = {
        "search_seconds": round(
            stats.elapsed if stats is not None else total_seconds, 6
        ),
        "total_seconds": round(total_seconds, 6),
        "cost": result.cost,
        "used_fallback": result.used_fallback,
    }
    if stats is not None:
        record.update(
            nodes=stats.nodes,
            backtracks=stats.backtracks,
            propagations=stats.propagations,
            solutions=stats.solutions,
            proven_optimal=stats.proven_optimal,
        )
    return record


def run_tier(
    vm_count: int,
    samples: int = SAMPLES_PER_TIER,
    timeout: float = TIMEOUT_S,
    node_count: int = 200,
    node_limit: Optional[int] = None,
) -> dict:
    budget = node_limit if node_limit is not None else default_node_limit(vm_count)
    tier_samples = []
    for sample in range(samples):
        seed = 7_000 * vm_count + sample
        scenario = TraceConfigurationGenerator(
            node_count=node_count, seed=seed
        ).generate(vm_count)
        decision = ConsolidationDecisionModule().decide(
            scenario.configuration, scenario.queue
        )
        constraints = representative_constraints(scenario)
        record = {
            "seed": seed,
            "vms": scenario.vm_count,
            "constraint_count": len(constraints),
            "unconstrained": _solve(scenario, decision, (), timeout, budget),
            "constrained": _solve(
                scenario, decision, constraints, timeout, budget
            ),
        }
        base = record["unconstrained"]["search_seconds"]
        record["overhead"] = (
            round(record["constrained"]["search_seconds"] / base, 2)
            if base
            else None
        )
        tier_samples.append(record)

    overheads = [s["overhead"] for s in tier_samples if s["overhead"] is not None]
    return {
        "vm_count": vm_count,
        "node_count": node_count,
        "node_limit": budget,
        "timeout_seconds": timeout,
        "samples": tier_samples,
        "median": {
            "unconstrained_search_seconds": round(
                statistics.median(
                    s["unconstrained"]["search_seconds"] for s in tier_samples
                ),
                6,
            ),
            "constrained_search_seconds": round(
                statistics.median(
                    s["constrained"]["search_seconds"] for s in tier_samples
                ),
                6,
            ),
            "overhead": round(statistics.median(overheads), 2)
            if overheads
            else None,
        },
    }


def run(
    tiers: Sequence[int] = TIERS,
    samples: int = SAMPLES_PER_TIER,
    timeout: float = TIMEOUT_S,
    node_count: int = 200,
    node_limit: Optional[int] = None,
) -> dict:
    return {
        "greedy_incumbent": False,
        "first_solution_only": True,
        "max_overhead_gate": MAX_OVERHEAD,
        "methodology": (
            "same instance, same node budget, greedy incumbent disabled, "
            "both solves stop at the first viable placement; overhead is "
            "constrained/unconstrained search seconds (median of "
            "per-instance ratios)"
        ),
        "catalog_mix": [
            "Spread x3 (largest vjobs)",
            "Ban (1 vjob, 5 nodes)",
            "Fence (1 vjob, 3/4 fleet)",
            "RunningCapacity (20 nodes <= 40 VMs)",
        ],
        "tiers": [
            run_tier(
                vm_count,
                samples=samples,
                timeout=timeout,
                node_count=node_count,
                node_limit=node_limit,
            )
            for vm_count in tiers
        ],
    }


def format_results(results: dict) -> str:
    lines = [
        "Constraint compilation overhead - constrained vs unconstrained "
        "solves (200-node scenarios, shared node budget)",
        f"{'VMs':>5}  {'budget':>6}  {'plain (s)':>10}  "
        f"{'constrained (s)':>16}  {'overhead':>9}",
    ]
    for tier in results["tiers"]:
        median = tier["median"]
        lines.append(
            f"{tier['vm_count']:>5}  {tier['node_limit']:>6}  "
            f"{median['unconstrained_search_seconds']:>10.3f}  "
            f"{median['constrained_search_seconds']:>16.3f}  "
            f"{median['overhead'] or float('nan'):>8.2f}x"
        )
    return "\n".join(lines)


def largest_tier_overhead(results: dict) -> Optional[float]:
    tier = max(results["tiers"], key=lambda tier: tier["vm_count"])
    return tier["median"]["overhead"]


def bench_constraints_overhead_gate():
    """Smoke + acceptance gate for ``pytest benchmarks``: one sample of the
    smallest tier must keep constrained overhead under the documented cap."""
    results = run(tiers=(TIERS[0],), samples=1)
    print()
    print(format_results(results))
    overhead = largest_tier_overhead(results)
    assert overhead is not None
    assert overhead < MAX_OVERHEAD, (
        f"constrained solve overhead {overhead}x exceeds the "
        f"{MAX_OVERHEAD}x acceptance gate"
    )


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
    results = run()
    print(format_results(results))
    print(json.dumps(results, indent=2, sort_keys=True))
