"""Figure 10 — reconfiguration cost of FFD vs Entropy on 200-node scenarios.

For every VM count of the paper's sweep (54 to 486 VMs on 200 nodes), random
configurations are generated, the sample decision module selects the vjobs to
run, and the cost of the plan produced by the First-Fit-Decreasing baseline is
compared with the cost of the plan produced by the CP optimizer.

The paper draws 30 samples per point and gives the optimizer 40 seconds; to
keep the harness fast this benchmark uses fewer samples and a shorter time
budget (both configurable through the module constants below).  The shape to
check: Entropy's plans are dramatically cheaper than FFD's, and the gap widens
as the number of VMs (hence of possible movements) grows.
"""

from __future__ import annotations

from repro.analysis.metrics import (
    CostComparison,
    average_cost_reduction,
    mean_costs_by_vm_count,
)
from repro.analysis.report import format_fraction, series
from repro.core import ClusterContextSwitch, build_plan, plan_cost
from repro import get_decision_module
from repro.workloads import TraceConfigurationGenerator, paper_vm_counts

#: Samples per VM count (the paper uses 30).
SAMPLES_PER_POINT = 2
#: CP time budget per context switch, seconds (the paper uses 40).
OPTIMIZER_TIMEOUT_S = 3.0
#: VM counts to evaluate (the paper sweeps 54..486 by steps of 54).
VM_COUNTS = paper_vm_counts()


def _one_sample(vm_count: int, sample: int, module):
    generator = TraceConfigurationGenerator(seed=1_000 * vm_count + sample)
    scenario = generator.generate(vm_count)
    decision = module.decide(scenario.configuration, scenario.queue)
    if decision.fallback_target is None:
        return None
    ffd_plan = build_plan(
        scenario.configuration, decision.fallback_target, scenario.vjob_of_vm()
    )
    ffd_cost = plan_cost(ffd_plan).total
    switcher = ClusterContextSwitch(optimizer_timeout=OPTIMIZER_TIMEOUT_S)
    report = switcher.compute(
        scenario.configuration,
        decision.vm_states,
        vjob_of_vm=scenario.vjob_of_vm(),
        fallback_target=decision.fallback_target,
    )
    return CostComparison(
        vm_count=vm_count, ffd_cost=ffd_cost, entropy_cost=report.total_cost
    )


def _sweep() -> list[CostComparison]:
    module = get_decision_module("consolidation")
    comparisons: list[CostComparison] = []
    for vm_count in VM_COUNTS:
        for sample in range(SAMPLES_PER_POINT):
            comparison = _one_sample(vm_count, sample, module)
            if comparison is not None:
                comparisons.append(comparison)
    return comparisons


def bench_figure10_reconfiguration_cost(benchmark):
    comparisons = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = [
        (
            vm_count,
            f"{ffd:,.0f}",
            f"{entropy:,.0f}",
            format_fraction(1 - entropy / ffd if ffd else 0.0),
        )
        for vm_count, ffd, entropy in mean_costs_by_vm_count(comparisons)
    ]
    print()
    print(series(
        "Figure 10 — reconfiguration cost on 200 nodes (mean per VM count)",
        ["VMs", "FFD cost", "Entropy cost", "reduction"],
        rows,
    ))
    reduction = average_cost_reduction(comparisons)
    print(f"average cost reduction: {format_fraction(reduction)} (paper: ~95%)")

    # Shape checks: Entropy always at most as expensive as FFD, large average
    # reduction, and a growing gap with the number of VMs.
    assert all(c.entropy_cost <= c.ffd_cost for c in comparisons)
    assert reduction >= 0.4
    means = mean_costs_by_vm_count(comparisons)
    first_gap = means[0][1] - means[0][2]
    last_gap = means[-1][1] - means[-1][2]
    assert last_gap >= first_gap
