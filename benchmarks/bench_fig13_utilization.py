"""Figure 13 — memory and CPU utilization of the VMs, Entropy vs FCFS.

Samples the utilization of the cluster over time for the two strategies on the
same campaign.  The shape to check (paper): while both strategies still have
work queued, Entropy keeps the cluster busier (it packs more vjobs at once and
suspends the excess instead of leaving nodes idle), and its memory footprint
is higher for the same reason; once Entropy runs out of runnable vjobs its
utilization drops below the baseline that is still grinding through its queue.
"""

from __future__ import annotations

from repro.analysis.metrics import (
    average_cpu_utilization,
    average_memory_utilization_gb,
    resample,
)
from repro.analysis.report import format_fraction, series


def _series(entropy_run, static_run, step=300.0):
    horizon = max(entropy_run.makespan, static_run.makespan)
    entropy = resample(entropy_run.utilization, step=step, horizon=horizon)
    static = resample(static_run.utilization, step=step, horizon=horizon)
    rows = []
    for entropy_sample, static_sample in zip(entropy, static):
        rows.append(
            (
                f"{entropy_sample.time / 60:.0f}",
                f"{static_sample.memory_used_mb / 1024:.1f}",
                f"{entropy_sample.memory_used_mb / 1024:.1f}",
                format_fraction(static_sample.cpu_fraction),
                format_fraction(entropy_sample.cpu_fraction),
            )
        )
    return rows


def bench_figure13_utilization(benchmark, entropy_run, static_run):
    rows = benchmark(_series, entropy_run, static_run)

    print()
    print(series(
        "Figure 13 — utilization over time (minutes)",
        ["minute", "FCFS mem GB", "Entropy mem GB", "FCFS cpu", "Entropy cpu"],
        rows,
    ))

    # averages over the period where Entropy still has work to run
    entropy_busy = average_cpu_utilization(
        entropy_run.utilization, until=entropy_run.makespan * 0.6
    )
    static_busy = average_cpu_utilization(
        static_run.utilization, until=entropy_run.makespan * 0.6
    )
    entropy_memory = average_memory_utilization_gb(
        entropy_run.utilization, until=entropy_run.makespan * 0.6
    )
    static_memory = average_memory_utilization_gb(
        static_run.utilization, until=entropy_run.makespan * 0.6
    )
    print(
        f"first 60% of the Entropy run — CPU: Entropy "
        f"{format_fraction(entropy_busy)} vs FCFS {format_fraction(static_busy)}; "
        f"memory: Entropy {entropy_memory:.1f} GB vs FCFS {static_memory:.1f} GB"
    )

    # Entropy exploits the cluster at least as much as the static allocation
    # while both have runnable work.
    assert entropy_busy >= static_busy
    assert entropy_memory >= static_memory * 0.9
    # utilization never exceeds the cluster capacity under Entropy
    assert all(sample.cpu_fraction <= 1.0 for sample in entropy_run.utilization)
