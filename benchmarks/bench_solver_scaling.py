"""Solver-core scaling — event-driven engine vs the naive-fixpoint reference.

The paper's control loop (Section 5.1) depends on the CP optimizer handling
200-node RJSP instances inside a 40 s budget.  This benchmark measures the
solver core itself on generated 200-node scenarios at 100, 200 and 400 VMs
(seeded, same seeds for both engines):

* the scenario is generated, the sample consolidation policy derives the
  target VM states, and the optimizer searches for the cheapest placement;
* the greedy incumbent is disabled (``use_greedy_bound=False``) so the
  branch-and-bound search itself is exercised — with the incumbent the easy
  instances are refuted at the root and nothing would be measured;
* both engines run the *same* heuristics and reach the same propagation
  fixpoints, so they walk **identical search trees** (property-tested in
  ``tests/properties/test_propagation_equivalence.py``).  Each solve is
  capped at a per-tier **node budget** (``node_limit``) chosen to cover the
  initial descent, the first improving solutions and a large slice of
  branch-and-bound refutation (40-100k backtracks); both engines therefore
  perform exactly the same search work and the wall-clock ratio is a pure
  propagation-speed measurement.  Instances solved to proven optimality
  before the budget simply measure the full time-to-proof (also identical
  work).

``search_seconds`` is the solver's own elapsed time; ``speedup`` is the
median of the per-sample (paired, same instance, same work) time ratios.

Run standalone (``python benchmarks/bench_solver_scaling.py``) for the full
sweep, or through ``benchmarks/harness.py`` which records the results into
``BENCH_*.json``.
"""

from __future__ import annotations

import json
import statistics
import time
from typing import Optional, Sequence

from repro.cp import ENGINES
from repro.core.optimizer import ContextSwitchOptimizer
from repro.decision import ConsolidationDecisionModule
from repro.workloads import TraceConfigurationGenerator

#: VM counts of the sweep (200 working nodes, as in Section 5.1).
TIERS = (100, 200, 400)
#: Samples (seeds) per tier.
SAMPLES_PER_TIER = 3
#: Wall-clock safety cap per solve, seconds (the node budget is the real
#: effort cap; this only guards against pathological instances).
TIMEOUT_S = 120.0


def default_node_limit(vm_count: int) -> int:
    """Per-tier node budget, calibrated so a sample stays under ~15 s for the
    reference engine while still covering a large refutation slice."""
    return 600 if vm_count > 200 else 400


def _solve_once(
    scenario, decision, engine: str, timeout: float, node_limit: Optional[int]
) -> dict:
    optimizer = ContextSwitchOptimizer(
        timeout=timeout,
        engine=engine,
        use_greedy_bound=False,
        node_limit=node_limit,
    )
    started = time.monotonic()
    result = optimizer.optimize(
        scenario.configuration,
        decision.vm_states,
        vjob_of_vm=scenario.vjob_of_vm(),
        fallback_target=decision.fallback_target,
    )
    total_seconds = time.monotonic() - started
    stats = result.statistics
    search_seconds = stats.elapsed if stats is not None else total_seconds
    record = {
        "search_seconds": round(search_seconds, 6),
        "total_seconds": round(total_seconds, 6),
        "cost": result.cost,
    }
    if stats is not None:
        record.update(
            nodes=stats.nodes,
            backtracks=stats.backtracks,
            propagations=stats.propagations,
            solutions=stats.solutions,
            proven_optimal=stats.proven_optimal,
            timed_out=stats.timed_out,
            node_limit_reached=stats.limit_reached,
        )
    return record


def run_tier(
    vm_count: int,
    samples: int = SAMPLES_PER_TIER,
    timeout: float = TIMEOUT_S,
    node_count: int = 200,
    node_limit: Optional[int] = None,
) -> dict:
    """Benchmark one VM-count tier; returns the per-sample records and the
    per-engine medians plus the median paired speedup."""
    budget = node_limit if node_limit is not None else default_node_limit(vm_count)
    tier_samples = []
    for sample in range(samples):
        seed = 1_000 * vm_count + sample
        scenario = TraceConfigurationGenerator(
            node_count=node_count, seed=seed
        ).generate(vm_count)
        decision = ConsolidationDecisionModule().decide(
            scenario.configuration, scenario.queue
        )
        record = {"seed": seed, "vms": scenario.vm_count}
        for engine in ENGINES:
            record[engine] = _solve_once(scenario, decision, engine, timeout, budget)
        event, fixpoint = record["event"], record["fixpoint"]
        record["same_work"] = (event["nodes"], event["backtracks"]) == (
            fixpoint["nodes"],
            fixpoint["backtracks"],
        )
        record["speedup"] = (
            round(fixpoint["search_seconds"] / event["search_seconds"], 2)
            if event["search_seconds"]
            else None
        )
        tier_samples.append(record)

    medians = {
        f"{engine}_search_seconds": round(
            statistics.median(s[engine]["search_seconds"] for s in tier_samples), 6
        )
        for engine in ENGINES
    }
    paired = [s["speedup"] for s in tier_samples if s["speedup"] is not None]
    medians["speedup"] = round(statistics.median(paired), 2) if paired else None
    return {
        "vm_count": vm_count,
        "node_count": node_count,
        "node_limit": budget,
        "timeout_seconds": timeout,
        "samples": tier_samples,
        "median": medians,
    }


def run(
    tiers: Sequence[int] = TIERS,
    samples: int = SAMPLES_PER_TIER,
    timeout: float = TIMEOUT_S,
    node_count: int = 200,
    node_limit: Optional[int] = None,
) -> dict:
    """Run every tier and return the full result document."""
    return {
        "engines": list(ENGINES),
        "greedy_incumbent": False,
        "methodology": (
            "identical search trees capped at a per-tier node budget; "
            "speedup is the median of paired per-instance time ratios"
        ),
        "tiers": [
            run_tier(
                vm_count,
                samples=samples,
                timeout=timeout,
                node_count=node_count,
                node_limit=node_limit,
            )
            for vm_count in tiers
        ],
    }


def format_results(results: dict) -> str:
    lines = [
        "Solver scaling - event-driven engine vs naive fixpoint "
        "(200-node scenarios, identical search work per engine)",
        f"{'VMs':>5}  {'budget':>6}  {'event (s)':>10}  {'fixpoint (s)':>13}  {'speedup':>8}",
    ]
    for tier in results["tiers"]:
        median = tier["median"]
        lines.append(
            f"{tier['vm_count']:>5}  {tier['node_limit']:>6}  "
            f"{median['event_search_seconds']:>10.3f}  "
            f"{median['fixpoint_search_seconds']:>13.3f}  "
            f"{median['speedup'] or float('nan'):>7.2f}x"
        )
    return "\n".join(lines)


def bench_solver_scaling_smoke():
    """One-sample smoke of the smallest tier, for ``pytest benchmarks``."""
    results = run(tiers=(TIERS[0],), samples=1)
    print()
    print(format_results(results))
    tier = results["tiers"][0]
    sample = tier["samples"][0]
    # Both engines performed the same search work on the same instance.
    assert sample["same_work"]
    assert sample["event"]["cost"] == sample["fixpoint"]["cost"]


if __name__ == "__main__":
    full = run()
    print(format_results(full))
    print(json.dumps(full, indent=2))
