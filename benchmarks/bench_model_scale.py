"""Datacenter-tier model-layer benchmark: per-round non-solve overhead.

The PR10 refactor makes the *model layer* — not the CP solve — the thing
that scales: the indexed :class:`~repro.model.Configuration` serves loads
from columnar storage with O(changed) incremental viability, and the lazy
:func:`~repro.scale.partition.partition` builds its interference graph from
constraint membership indices.  This sweep measures what a control-loop
round spends *outside* the solver on fenced fleets of 5k / 20k / 50k VMs:

* **observe** — apply a seeded demand-churn batch (``replace_vm``) and run
  the viability scan (incremental on the indexed lane, full on the naive
  lane);
* **partition** — decompose the fleet into zones (lazy partitioner vs the
  retained eager :func:`~repro.scale.reference.partition_reference`);
* **merge** — extract every zone's sub-configuration
  (:func:`~repro.scale.parallel.build_zone_configuration`) and fold the
  zone placements back into one global assignment.

The naive lane drives the retained oracles —
:class:`~repro.model.NaiveConfiguration` plus ``partition_reference`` — and
is capped at :data:`NAIVE_CAP` VMs (the eager partitioner is O(VMs x
constraints) with O(fleet) set rebuilds per member; above 5k it would
dominate the whole harness run).  Tiers above the cap record the indexed
lane only, which is exactly the point: they are unaffordable without the
index.

Gates (wired through ``benchmarks/harness.py``):

* ``--min-model-speedup`` — naive/indexed per-round ratio on the largest
  tier that still ran the naive lane (>= 5x on the 5k tier is the PR10
  acceptance gate).  A paired ratio, so it is runner-speed insensitive.
* ``--max-model-round-ms`` — absolute per-round budget for the indexed lane
  on the smallest tier.  Absolute wall-clock *does* depend on the runner,
  so the harness first calibrates a fixed pure-python loop and loudly
  skips the gate on slow hosts (same pattern as the partition gate's
  core-count skip).

Runnable standalone::

    python benchmarks/bench_model_scale.py
"""

from __future__ import annotations

import random
import statistics
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # pragma: no cover - script setup
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.constraints import Fence  # noqa: E402
from repro.model import (  # noqa: E402
    Configuration,
    NaiveConfiguration,
    Node,
    VirtualMachine,
)
from repro.scale.parallel import build_zone_configuration  # noqa: E402
from repro.scale.partition import partition  # noqa: E402
from repro.scale.reference import partition_reference  # noqa: E402

#: VM counts of the sweep (nodes are ``vms / VMS_PER_NODE``).
TIERS = (5_000, 20_000, 50_000)
#: Measured rounds per lane and tier (median reported).
ROUNDS = 5
#: Largest tier that still runs the naive oracle lane.
NAIVE_CAP = 5_000
VMS_PER_NODE = 4
#: Fence groups — every group welds into its own placement zone.
ZONES = 8
#: Fraction of the fleet whose CPU demand changes per observed round.
CHURN_FRACTION = 0.01

#: Iterations of the runner-speed calibration loop and its reference
#: wall-clock on the machine that recorded BENCH_PR10.json.  A host whose
#: calibration exceeds ``reference x SLOW_HOST_FACTOR`` is too slow for the
#: absolute per-round budget gate to be meaningful.
CALIBRATION_ITERATIONS = 2_000_000
CALIBRATION_REFERENCE_MS = 90.0
SLOW_HOST_FACTOR = 3.0


def calibration_ms() -> float:
    """Wall-clock of a fixed pure-python loop, used to detect runners too
    slow for the absolute ``--max-model-round-ms`` gate."""
    started = time.perf_counter()
    total = 0
    for i in range(CALIBRATION_ITERATIONS):
        total += i & 7
    assert total >= 0
    return (time.perf_counter() - started) * 1000.0


def build_fleet(
    vm_count: int, seed: int, naive: bool
) -> Tuple[Configuration, List[Fence], dict]:
    """A seeded fenced fleet: ``ZONES`` node groups, each fencing its own
    VM group, every VM running and viable."""
    rng = random.Random(seed)
    node_count = max(ZONES, vm_count // VMS_PER_NODE)
    cls = NaiveConfiguration if naive else Configuration
    configuration = cls()
    node_names = [f"node-{i}" for i in range(node_count)]
    for name in node_names:
        # Room for VMS_PER_NODE busy VMs on both dimensions, plus slack for
        # the uneven last fence group (integer division remainder).
        configuration.add_node(
            Node(name=name, cpu_capacity=2 * (VMS_PER_NODE + 2),
                 memory_capacity=1024 * (VMS_PER_NODE + 2))
        )
    width = node_count // ZONES
    groups = [
        node_names[g * width: (g + 1) * width if g < ZONES - 1 else node_count]
        for g in range(ZONES)
    ]
    group_vms: List[List[str]] = [[] for _ in range(ZONES)]
    for i in range(vm_count):
        group = i % ZONES
        vm_name = f"vm-{i}"
        vm = VirtualMachine(
            name=vm_name, memory=1024, cpu_demand=rng.randint(1, 2)
        )
        configuration.add_vm(vm)
        host = groups[group][(i // ZONES) % len(groups[group])]
        configuration.set_running(vm_name, host)
        group_vms[group].append(vm_name)
    constraints = [
        Fence(vms=group_vms[g], nodes=groups[g]) for g in range(ZONES)
    ]
    target_states = configuration.states()
    return configuration, constraints, target_states


def _measure_lane(
    vm_count: int, seed: int, rounds: int, naive: bool
) -> dict:
    """Median per-round observe/partition/merge wall-clock of one lane."""
    configuration, constraints, target_states = build_fleet(
        vm_count, seed, naive
    )
    rng = random.Random(seed + 1)
    churn = max(1, int(vm_count * CHURN_FRACTION))
    vm_names = list(configuration.vm_names)
    partitioner = partition_reference if naive else partition
    observe_ms: List[float] = []
    partition_ms: List[float] = []
    merge_ms: List[float] = []
    zones = 0
    # Drain construction dirtiness so round 0 measures steady state.
    configuration.viability_violations()
    for _ in range(rounds):
        started = time.perf_counter()
        for vm_name in rng.sample(vm_names, churn):
            vm = configuration.vm(vm_name)
            configuration.replace_vm(
                vm.with_cpu_demand(rng.randint(1, 2))
            )
        overloaded = configuration.viability_violations(only_dirty=True)
        assert not overloaded  # churn stays within capacity
        mid = time.perf_counter()
        decomposition = partitioner(
            configuration, target_states, constraints
        )
        assert decomposition.method == "interference"
        assert len(decomposition.zones) == ZONES
        after_partition = time.perf_counter()
        merged: dict = {}
        for zone in decomposition.zones:
            sub = build_zone_configuration(configuration, zone)
            merged.update(sub.placement())
        assert len(merged) == vm_count
        done = time.perf_counter()
        observe_ms.append((mid - started) * 1000.0)
        partition_ms.append((after_partition - mid) * 1000.0)
        merge_ms.append((done - after_partition) * 1000.0)
        zones = len(decomposition.zones)
    lane = {
        "observe_ms": round(statistics.median(observe_ms), 3),
        "partition_ms": round(statistics.median(partition_ms), 3),
        "merge_ms": round(statistics.median(merge_ms), 3),
    }
    lane["round_ms"] = round(
        lane["observe_ms"] + lane["partition_ms"] + lane["merge_ms"], 3
    )
    lane["zones"] = zones
    return lane


def run(
    tiers: Sequence[int] = TIERS,
    rounds: int = ROUNDS,
    seed: int = 1007,
    naive_cap: int = NAIVE_CAP,
) -> dict:
    """Run the sweep and return the recorded document section."""
    records = []
    for vm_count in tiers:
        indexed = _measure_lane(vm_count, seed, rounds, naive=False)
        naive: Optional[dict] = None
        speedup: Optional[float] = None
        if vm_count <= naive_cap:
            naive = _measure_lane(vm_count, seed, rounds, naive=True)
            if indexed["round_ms"] > 0:
                speedup = round(naive["round_ms"] / indexed["round_ms"], 2)
        records.append(
            {
                "vm_count": vm_count,
                "node_count": max(ZONES, vm_count // VMS_PER_NODE),
                "zones": ZONES,
                "rounds": rounds,
                "churn_vms": max(1, int(vm_count * CHURN_FRACTION)),
                "indexed": indexed,
                "naive": naive,
                "speedup": speedup,
            }
        )
    return {
        "tiers": records,
        "naive_cap": naive_cap,
        "churn_fraction": CHURN_FRACTION,
        "calibration_ms": round(calibration_ms(), 1),
        "calibration_reference_ms": CALIBRATION_REFERENCE_MS,
    }


def gate_speedup(results: dict) -> Optional[float]:
    """Speedup of the largest tier that ran the naive lane (the
    ``--min-model-speedup`` gate input)."""
    gated = [t for t in results["tiers"] if t["speedup"] is not None]
    if not gated:
        return None
    return max(gated, key=lambda t: t["vm_count"])["speedup"]


def gate_round_ms(results: dict) -> Optional[float]:
    """Indexed per-round time of the smallest tier (the
    ``--max-model-round-ms`` gate input — the 5k tier in the full sweep)."""
    if not results["tiers"]:
        return None
    tier = min(results["tiers"], key=lambda t: t["vm_count"])
    return float(tier["indexed"]["round_ms"])


def slow_host(results: dict) -> bool:
    """True when the runner is too slow for the absolute budget gate."""
    return (
        results["calibration_ms"]
        > results["calibration_reference_ms"] * SLOW_HOST_FACTOR
    )


def format_results(results: dict) -> str:
    lines = []
    for tier in results["tiers"]:
        indexed = tier["indexed"]
        line = (
            f"  {tier['vm_count']:>6} VMs / {tier['node_count']:>6} nodes: "
            f"indexed {indexed['round_ms']:>8.2f} ms/round "
            f"(observe {indexed['observe_ms']:.2f} + "
            f"partition {indexed['partition_ms']:.2f} + "
            f"merge {indexed['merge_ms']:.2f})"
        )
        if tier["naive"] is not None:
            line += (
                f" | naive {tier['naive']['round_ms']:>9.2f} ms/round "
                f"-> {tier['speedup']}x"
            )
        else:
            line += " | naive skipped (above cap)"
        lines.append(line)
    lines.append(
        f"  calibration {results['calibration_ms']} ms "
        f"(reference {results['calibration_reference_ms']} ms)"
    )
    return "\n".join(lines)


def bench_model_scale_smoke():
    """One sub-cap tier with both lanes, for ``pytest benchmarks``."""
    results = run(tiers=(1_000,), rounds=2)
    print()
    print(format_results(results))
    tier = results["tiers"][0]
    assert tier["indexed"]["round_ms"] > 0
    assert tier["naive"] is not None
    assert tier["speedup"] > 1.0


def main() -> int:
    results = run()
    print(format_results(results))
    return 0


if __name__ == "__main__":
    sys.exit(main())
