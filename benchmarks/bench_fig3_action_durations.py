"""Figure 3 — duration of each VM context-switch operation vs memory size.

Regenerates the three panels of Figure 3: (a) run/migrate/stop, (b) suspend
(local vs pushed with scp/rsync), (c) resume (local vs remote), for the four
memory sizes used in the paper.  The shape to check: run/stop durations are
memory independent (≈6 s / ≈25 s), migrate/suspend/resume grow linearly with
memory, and the remote variants cost about twice the local ones.
"""

from __future__ import annotations

from repro.analysis.report import series
from repro.config import VM_MEMORY_SIZES_MB
from repro.sim import FAST_STOP_HYPERVISOR, HypervisorModel, TransferMethod


def _figure3a(model: HypervisorModel) -> list[tuple]:
    return [
        (
            memory,
            round(model.run_duration(memory), 1),
            round(model.stop_duration(memory), 1),
            round(FAST_STOP_HYPERVISOR.stop_duration(memory), 1),
            round(model.migrate_duration(memory), 1),
        )
        for memory in VM_MEMORY_SIZES_MB
    ]


def _figure3b(scp: HypervisorModel, rsync: HypervisorModel) -> list[tuple]:
    return [
        (
            memory,
            round(scp.suspend_duration(memory, local=True), 1),
            round(scp.suspend_duration(memory, local=False), 1),
            round(rsync.suspend_duration(memory, local=False), 1),
        )
        for memory in VM_MEMORY_SIZES_MB
    ]


def _figure3c(scp: HypervisorModel, rsync: HypervisorModel) -> list[tuple]:
    return [
        (
            memory,
            round(scp.resume_duration(memory, local=True), 1),
            round(scp.resume_duration(memory, local=False), 1),
            round(rsync.resume_duration(memory, local=False), 1),
        )
        for memory in VM_MEMORY_SIZES_MB
    ]


def bench_figure3_action_durations(benchmark):
    scp = HypervisorModel(transfer_method=TransferMethod.SCP)
    rsync = HypervisorModel(transfer_method=TransferMethod.RSYNC)

    rows_a = benchmark(_figure3a, scp)
    rows_b = _figure3b(scp, rsync)
    rows_c = _figure3c(scp, rsync)

    print()
    print(series(
        "Figure 3a — run / stop / migrate (seconds)",
        ["memory MB", "run", "clean stop", "hard stop", "migrate"],
        rows_a,
    ))
    print(series(
        "Figure 3b — suspend (seconds)",
        ["memory MB", "local", "local+scp", "local+rsync"],
        rows_b,
    ))
    print(series(
        "Figure 3c — resume (seconds)",
        ["memory MB", "local", "local+scp", "local+rsync"],
        rows_c,
    ))

    # sanity of the reproduced shape
    assert rows_a[0][1] == rows_a[-1][1]                      # run memory independent
    assert rows_a[-1][4] > rows_a[0][4]                        # migrate grows with memory
    for memory, local, scp_remote, rsync_remote in rows_b:
        assert 1.8 <= scp_remote / local <= 2.2
        assert rsync_remote <= scp_remote
    assert rows_c[-1][2] >= 120.0                              # 2 GB remote resume in minutes
