"""Table 1 — the local cost of every action in the cost model.

Regenerates the table and checks its defining properties: migrate and suspend
cost the memory demand of the manipulated VM, a resume costs the memory demand
when it is local and twice that when it is remote, run and stop cost a
constant (0) regardless of the VM size.
"""

from __future__ import annotations

from repro.analysis.report import series
from repro.config import VM_MEMORY_SIZES_MB
from repro.core.actions import Migrate, Resume, Run, Stop, Suspend
from repro.model import Configuration, VirtualMachine, make_working_nodes


def _build_configuration() -> Configuration:
    configuration = Configuration(
        nodes=make_working_nodes(2, cpu_capacity=2, memory_capacity=8192)
    )
    for memory in VM_MEMORY_SIZES_MB:
        running = VirtualMachine(f"run-{memory}", memory=memory, cpu_demand=1)
        sleeping = VirtualMachine(f"sleep-{memory}", memory=memory, cpu_demand=1)
        waiting = VirtualMachine(f"wait-{memory}", memory=memory, cpu_demand=1)
        configuration.add_vm(running)
        configuration.add_vm(sleeping)
        configuration.add_vm(waiting)
        configuration.set_running(f"run-{memory}", "node-0")
        configuration.set_sleeping(f"sleep-{memory}", "node-0")
    return configuration


def _table1(configuration: Configuration) -> list[tuple]:
    rows = []
    for memory in VM_MEMORY_SIZES_MB:
        rows.append(
            (
                memory,
                Migrate(f"run-{memory}", "node-0", "node-1").cost(configuration),
                Run(f"wait-{memory}", "node-1").cost(configuration),
                Stop(f"run-{memory}", "node-0").cost(configuration),
                Suspend(f"run-{memory}", "node-0").cost(configuration),
                Resume(f"sleep-{memory}", "node-0", "node-0").cost(configuration),
                Resume(f"sleep-{memory}", "node-0", "node-1").cost(configuration),
            )
        )
    return rows


def bench_table1_cost_model(benchmark):
    configuration = _build_configuration()
    rows = benchmark(_table1, configuration)

    print()
    print(series(
        "Table 1 — local action costs (Dm = memory demand, MB)",
        ["Dm(vm)", "migrate", "run", "stop", "suspend", "resume local", "resume remote"],
        rows,
    ))

    for memory, migrate, run, stop, suspend, local, remote in rows:
        assert migrate == memory
        assert suspend == memory
        assert local == memory
        assert remote == 2 * memory
        assert run == 0 and stop == 0
