"""Partitioned vs monolithic solving — the scale-out benchmark (PR 5).

The fixture merges ``k`` independently generated 50-node / 100-VM scenarios
(Section 5.1 shape and density) into one configuration and fences each
sub-fleet's VMs onto its own node slice, so the interference graph has
exactly ``k`` components and the partition is *exact*: partitioned and
monolithic search explore the same placement space (every VM's domain is its
zone's nodes either way).  What differs is the model each side pays for —
the monolithic solve builds and propagates one ``200-node x 400-VM`` model,
the partitioned solve ``k`` quarter-size models, concurrently on a process
pool.

Measured quantity: the end-to-end wall-clock of ``optimize()`` to a
**checker-validated first viable plan** (``first_solution_only=True``), the
latency the control loop actually pays every round before it can start
executing actions.  Each sample times ``rounds`` consecutive solves of the
same instance and keeps the per-round median, mirroring the loop's steady
state (the partitioned optimizer forks its worker pool once and reuses it
across rounds — exactly what a long-running loop does).  Both sides run the
identical code path around the search: one global planner pass, the same
constraint checking, the same cost accounting.

``speedup`` is the per-sample ratio ``monolithic/partitioned`` of those
per-round medians.  The merged plan is checker-validated against the fences
on every sample.

The PR 5 acceptance gate: partitioned solve on the 400-VM / 4-zone tier is
**>= 1.5x** faster than monolithic (enforced in CI through
``benchmarks/harness.py --min-partition-speedup 1.5``).

Run standalone (``python benchmarks/bench_partitioning.py``) for the full
sweep, or through ``benchmarks/harness.py`` which records the results into
``BENCH_*.json``.
"""

from __future__ import annotations

import json
import statistics
import time
from typing import Optional, Sequence

from repro.constraints import Fence
from repro.constraints.checker import check_configuration, check_plan
from repro.core.optimizer import ContextSwitchOptimizer
from repro.decision import ConsolidationDecisionModule
from repro.model.configuration import Configuration
from repro.model.queue import VJobQueue
from repro.scale import ParallelOptimizer
from repro.workloads import TraceConfigurationGenerator

#: (zones, total VMs) of the sweep; the largest tier is the CI gate.
TIERS = ((2, 200), (4, 400))
NODES_PER_ZONE = 50
SAMPLES_PER_TIER = 3
#: Consecutive solves timed per sample (the control loop's steady state);
#: the per-round median is the sample's latency.
ROUNDS = 5
#: Wall-clock safety cap per solve, seconds.
TIMEOUT_S = 120.0


def build_instance(
    zones: int,
    vms_per_zone: int,
    nodes_per_zone: int = NODES_PER_ZONE,
    seed: int = 0,
):
    """Merge ``zones`` generated scenarios into one fenced configuration.

    Returns ``(configuration, queue, fences, vjob_of_vm)``; VM and node
    names carry a ``z<k>-`` prefix, and zone ``k``'s fence pins its VMs to
    its own node slice.
    """
    configuration = Configuration()
    queue = VJobQueue()
    fences = []
    vjob_of_vm: dict[str, str] = {}
    for zone in range(zones):
        generator = TraceConfigurationGenerator(
            node_count=nodes_per_zone,
            seed=seed * 100 + zone,
            name_prefix=f"z{zone}-",
        )
        scenario = generator.generate(vms_per_zone)
        sub = scenario.configuration
        for node in sub.nodes:
            configuration.add_node(node)
        for vm in sub.vms:
            configuration.add_vm(vm)
            state = sub.state_of(vm.name)
            if state.name == "RUNNING":
                configuration.set_running(vm.name, sub.location_of(vm.name))
            elif state.name == "SLEEPING":
                configuration.set_sleeping(
                    vm.name, sub.image_location_of(vm.name)
                )
        for vjob in scenario.queue.ordered():
            queue.submit(vjob)
        vjob_of_vm.update(scenario.vjob_of_vm())
        fences.append(Fence(sub.vm_names, sub.node_names))
    return configuration, queue, fences, vjob_of_vm


def _timed_rounds(optimizer, configuration, decision, vjob_of_vm, fences, rounds):
    """Run ``rounds`` consecutive solves; returns (last result, per-round
    median seconds)."""
    laps = []
    result = None
    for _ in range(rounds):
        started = time.monotonic()
        result = optimizer.optimize(
            configuration,
            decision.vm_states,
            vjob_of_vm=vjob_of_vm,
            fallback_target=decision.fallback_target,
            constraints=fences,
        )
        laps.append(time.monotonic() - started)
    return result, statistics.median(laps)


def run_tier(
    zones: int,
    vm_count: int,
    samples: int = SAMPLES_PER_TIER,
    timeout: float = TIMEOUT_S,
    rounds: int = ROUNDS,
    zone_executor: str = "auto",
) -> dict:
    """Benchmark one (zones, VM-count) tier."""
    vms_per_zone = vm_count // zones
    tier_samples = []
    for sample in range(samples):
        seed = 10 * vm_count + sample
        configuration, queue, fences, vjob_of_vm = build_instance(
            zones, vms_per_zone, seed=seed
        )
        decision = ConsolidationDecisionModule().decide(configuration, queue)

        monolithic = ContextSwitchOptimizer(
            timeout=timeout, first_solution_only=True
        )
        mono_result, mono_seconds = _timed_rounds(
            monolithic, configuration, decision, vjob_of_vm, fences, rounds
        )

        with ParallelOptimizer(
            timeout=timeout,
            first_solution_only=True,
            max_workers=zones,
            zone_executor=zone_executor,
        ) as partitioned:
            part_result, part_seconds = _timed_rounds(
                partitioned, configuration, decision, vjob_of_vm, fences, rounds
            )

        # The merged plan must be exactly as trustworthy as a monolithic
        # one: it reaches a viable target whose final state is checker-clean
        # (transient mid-plan pivot breaches, identical to monolithic
        # behaviour, are recorded as data rather than asserted away).
        violations = check_plan(part_result.plan, fences)
        part_result.plan.check_reaches(part_result.target)
        tier_samples.append(
            {
                "seed": seed,
                "partition_method": part_result.partition_method,
                "zones_solved": part_result.zone_count,
                "checker_violations": len(violations),
                "target_violations": len(
                    check_configuration(part_result.target, fences)
                ),
                "target_viable": part_result.target.is_viable(),
                "monolithic": {
                    "seconds": round(mono_seconds, 6),
                    "cost": mono_result.cost,
                    "nodes": mono_result.statistics.nodes,
                },
                "partitioned": {
                    "seconds": round(part_seconds, 6),
                    "cost": part_result.cost,
                    "nodes": part_result.statistics.nodes,
                },
                "speedup": round(mono_seconds / part_seconds, 2)
                if part_seconds
                else None,
            }
        )

    paired = [s["speedup"] for s in tier_samples if s["speedup"] is not None]
    return {
        "zones": zones,
        "vm_count": vm_count,
        "nodes_per_zone": NODES_PER_ZONE,
        "rounds": rounds,
        "timeout_seconds": timeout,
        "samples": tier_samples,
        "median": {
            "monolithic_seconds": round(
                statistics.median(
                    s["monolithic"]["seconds"] for s in tier_samples
                ),
                6,
            ),
            "partitioned_seconds": round(
                statistics.median(
                    s["partitioned"]["seconds"] for s in tier_samples
                ),
                6,
            ),
            "speedup": round(statistics.median(paired), 2) if paired else None,
        },
    }


def run(
    tiers: Sequence[Sequence[int]] = TIERS,
    samples: int = SAMPLES_PER_TIER,
    timeout: float = TIMEOUT_S,
    rounds: int = ROUNDS,
    zone_executor: str = "auto",
) -> dict:
    """Run every tier and return the full result document."""
    import os

    from repro.scale.parallel import resolve_zone_executor

    return {
        "methodology": (
            "exact fence-partitioned instances; per-round median wall-clock "
            "of optimize() to a checker-validated first viable plan over "
            f"{rounds} consecutive solves (warm worker pool); speedup is "
            "the per-sample monolithic/partitioned ratio"
        ),
        "zone_executor": zone_executor,
        "resolved_zone_executor": resolve_zone_executor(zone_executor),
        "cpu_count": os.cpu_count(),
        "tiers": [
            run_tier(
                zones,
                vm_count,
                samples=samples,
                timeout=timeout,
                rounds=rounds,
                zone_executor=zone_executor,
            )
            for zones, vm_count in tiers
        ],
    }


def largest_tier_speedup(results: dict) -> Optional[float]:
    """Median speedup of the largest tier — what the CI gate checks."""
    tier = max(results["tiers"], key=lambda t: t["vm_count"])
    return tier["median"]["speedup"]


def format_results(results: dict) -> str:
    lines = [
        "Partitioned vs monolithic solve "
        "(fence-partitioned instances, first viable plan, warm pool)",
        f"{'zones':>6}  {'VMs':>5}  {'mono (s)':>9}  {'part (s)':>9}  {'speedup':>8}",
    ]
    for tier in results["tiers"]:
        median = tier["median"]
        lines.append(
            f"{tier['zones']:>6}  {tier['vm_count']:>5}  "
            f"{median['monolithic_seconds']:>9.3f}  "
            f"{median['partitioned_seconds']:>9.3f}  "
            f"{median['speedup'] or float('nan'):>7.2f}x"
        )
    return "\n".join(lines)


def bench_partitioning_smoke():
    """One-sample smoke of the smallest tier, for ``pytest benchmarks``."""
    results = run(tiers=(TIERS[0],), samples=1, rounds=1, zone_executor="serial")
    print()
    print(format_results(results))
    sample = results["tiers"][0]["samples"][0]
    assert sample["partition_method"] == "interference"
    assert sample["zones_solved"] == TIERS[0][0]
    assert sample["target_violations"] == 0
    assert sample["target_viable"]


if __name__ == "__main__":
    full = run()
    print(format_results(full))
    print(json.dumps(full, indent=2))
