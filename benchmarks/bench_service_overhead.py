"""Observer/telemetry overhead of the operator service on the control loop.

The :class:`repro.service.ServiceObserver` hooks every control-loop round
(configuration snapshot, telemetry append, metric updates, audit entries)
and the :class:`~repro.service.LoopCommandQueue` adds one drain check per
iteration.  Both must stay invisible next to the planning work itself:
< 5 % round-latency overhead is the PR6 acceptance gate, enforced by
``--max-service-overhead`` in CI.

Methodology: the hooks cost tens of microseconds per round while a round
itself takes about a millisecond, so a bare-vs-instrumented wall-clock A/B
at CI scale is dominated by host jitter (tens of percent on shared
runners).  Instead the harness times the instrumentation *from inside* an
instrumented run — every observer hook is wrapped with a
``perf_counter`` accumulator, and the per-iteration cost of draining an
(empty) command queue is microbenchmarked separately — then reports that
instrumentation time as a fraction of the un-instrumented remainder of the
run.  Numerator and denominator come from the same run, so scheduler noise
cancels instead of swamping the signal.

Runnable standalone::

    python benchmarks/bench_service_overhead.py
"""

from __future__ import annotations

import statistics
import sys
import time
from pathlib import Path
from typing import Any

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # pragma: no cover - script setup
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api.scenario import Scenario  # noqa: E402
from repro.service.commands import LoopCommandQueue  # noqa: E402
from repro.service.observer import ServiceObserver  # noqa: E402
from repro.workloads import ChurnGenerator, ProblemClass, heterogeneous_nodes  # noqa: E402

#: Instrumented runs measured per sweep.
SAMPLES = 5
#: Fleet size / vjob count of the measured scenario — big enough that a
#: round does real planning work, small enough for a CI smoke lane.
NODE_COUNT = 8
VJOB_COUNT = 16
#: Empty-queue drain calls for the command-queue microbenchmark.
DRAIN_CALLS = 20_000


class _TimedObserver(ServiceObserver):
    """A ServiceObserver that accumulates wall-clock time spent inside its
    own hooks — the exact synchronous cost the service adds to each round."""

    def __init__(self) -> None:
        super().__init__()
        self.hook_seconds = 0.0

    def _timed(self, hook: Any, *args: Any) -> None:
        started = time.perf_counter()
        hook(*args)
        self.hook_seconds += time.perf_counter() - started

    def on_run_start(self, loop: Any) -> None:
        self._timed(super().on_run_start, loop)

    def on_iteration(self, t: float, configuration: Any) -> None:
        self._timed(super().on_iteration, t, configuration)

    def on_switch(self, record: Any, report: Any) -> None:
        self._timed(super().on_switch, record, report)

    def on_sample(self, sample: Any) -> None:
        self._timed(super().on_sample, sample)

    def on_vjob_completed(self, name: str, t: float) -> None:
        self._timed(super().on_vjob_completed, name, t)

    def on_fault(self, record: Any) -> None:
        self._timed(super().on_fault, record)

    def on_repair(self, name: str, latency: float) -> None:
        self._timed(super().on_repair, name, latency)

    def on_constraint_violation(self, record: Any) -> None:
        self._timed(super().on_constraint_violation, record)

    def on_run_end(self, result: Any) -> None:
        self._timed(super().on_run_end, result)


def _scenario() -> Scenario:
    generator = ChurnGenerator(
        seed=23,
        mean_interarrival_s=30.0,
        vm_count_choices=(2, 3),
        problem_classes=(ProblemClass.W,),
    )
    return Scenario(
        nodes=heterogeneous_nodes(NODE_COUNT, seed=5),
        workloads=generator.workloads(VJOB_COUNT),
        policy="consolidation",
        optimizer_timeout=2.0,
        use_optimizer=False,
    )


def _drain_microseconds() -> float:
    """Cost of the per-iteration empty-queue drain check, in µs."""
    queue = LoopCommandQueue()

    class _Loop:  # minimal drain target; an empty queue never touches it
        pass

    target = _Loop()
    started = time.perf_counter()
    for _ in range(DRAIN_CALLS):
        queue.drain(target, 0.0)
    return (time.perf_counter() - started) / DRAIN_CALLS * 1e6


def run(samples: int = SAMPLES) -> dict:
    """Run the seeded scenario ``samples`` times with a hook-timing
    observer and report instrumentation time over bare loop time."""
    totals: list[float] = []
    hooks: list[float] = []
    overheads: list[float] = []
    rounds = 0
    drain_us = _drain_microseconds()
    for _ in range(samples):
        observer = _TimedObserver()
        scenario = _scenario()
        scenario.observe(observer)
        started = time.perf_counter()
        result = scenario.build(command_queue=LoopCommandQueue()).run()
        total = time.perf_counter() - started
        rounds = len(result.utilization)
        service = observer.hook_seconds + rounds * drain_us * 1e-6
        bare = total - service
        totals.append(total)
        hooks.append(observer.hook_seconds)
        overheads.append(service / bare * 100.0 if bare else 0.0)
    median_total = statistics.median(totals)
    median_hooks = statistics.median(hooks)
    return {
        "samples": samples,
        "nodes": NODE_COUNT,
        "vjobs": VJOB_COUNT,
        "rounds_per_run": rounds,
        "total_seconds": [round(s, 6) for s in totals],
        "hook_seconds": [round(s, 6) for s in hooks],
        "drain_us_per_round": round(drain_us, 3),
        "hook_us_per_round": round(median_hooks / rounds * 1e6, 2) if rounds else 0.0,
        "median_total_seconds": round(median_total, 6),
        "overhead_percent": round(statistics.median(overheads), 2),
    }


def overhead_percent(results: dict) -> float:
    return float(results["overhead_percent"])


def format_results(results: dict) -> str:
    return (
        f"service overhead: {results['hook_us_per_round']:.1f} us/round in hooks "
        f"+ {results['drain_us_per_round']:.1f} us/round queue drain over "
        f"{results['rounds_per_run']} rounds "
        f"({results['median_total_seconds']*1000:.1f} ms run) -> "
        f"{results['overhead_percent']:+.2f} %"
    )


def bench_service_overhead() -> None:
    """Pytest entry point: the instrumented loop must stay within the 5 %
    PR6 gate."""
    results = run(samples=3)
    print(format_results(results))
    assert results["overhead_percent"] < 5.0


if __name__ == "__main__":
    print(format_results(run()))
