"""Repair-based vs cold replanning under churn — the incremental bench (PR 7).

The fixture generates one Section 5.1-shaped fleet per sample and drives it
through ``rounds`` churn rounds: each round a seeded ~``churn`` fraction of
the running VMs is knocked back to Waiting (the shape of a crash or an
arrival burst), and the round is replanned twice on the *identical*
perturbed configuration —

* **cold**: a fresh monolithic :class:`ContextSwitchOptimizer` solve, the
  price every round paid before PR 7;
* **repair**: the :class:`~repro.repair.RepairOptimizer` warm-started on
  the previous round's accepted assignment, freezing the clean region and
  solving the dirty one.

The churn then advances along the repair trajectory (``current`` becomes
the repaired target), mirroring the control loop's steady state.  Both
sides run the identical code path around the search — one global planner
pass, the same checker pipeline — and every repaired plan is validated:
it reaches a viable target and the checker accepts it.

``speedup`` is the per-round ratio ``cold/repair`` of wall-clock
``optimize()`` latency; a sample keeps the median over its rounds, a tier
the median over its samples (paired medians — both sides see the same
instances).

The PR 7 acceptance gate: on the 200-VM churn tier with <= 10 % of the VMs
perturbed per round, the repair engine's median per-round solve latency is
**>= 2x** faster than the cold solve (enforced in CI through
``benchmarks/harness.py --min-repair-speedup 2.0``).

Run standalone (``python benchmarks/bench_repair.py``) for the full sweep,
or through ``benchmarks/harness.py`` which records the results into
``BENCH_*.json``.
"""

from __future__ import annotations

import json
import math
import random
import statistics
import time
from typing import Optional, Sequence

from repro.core.optimizer import ContextSwitchOptimizer
from repro.decision import ConsolidationDecisionModule
from repro.model.vm import VMState
from repro.repair import RepairOptimizer
from repro.workloads import TraceConfigurationGenerator

#: (total VMs, churn fraction) of the sweep; the largest tier is the CI gate.
TIERS = ((100, 0.1), (200, 0.1))
SAMPLES_PER_TIER = 3
#: Churn rounds replanned per sample; each round's cold/repair ratio is one
#: paired measurement.
ROUNDS = 5
#: Wall-clock safety cap per solve, seconds.
TIMEOUT_S = 120.0
#: Dirty-region co-host expansion (the control loop's default).
HALO = 1


def build_instance(vm_count: int, seed: int = 0):
    """One generated fleet (Section 5.1 shape: 2 VMs per node density).

    Returns ``(configuration, queue, vjob_of_vm)``.
    """
    generator = TraceConfigurationGenerator(
        node_count=max(2, vm_count // 2), seed=seed
    )
    scenario = generator.generate(vm_count)
    return scenario.configuration, scenario.queue, scenario.vjob_of_vm()


def run_tier(
    vm_count: int,
    churn: float,
    samples: int = SAMPLES_PER_TIER,
    timeout: float = TIMEOUT_S,
    rounds: int = ROUNDS,
    halo: int = HALO,
) -> dict:
    """Benchmark one (VM-count, churn) tier."""
    tier_samples = []
    for sample in range(samples):
        seed = 10 * vm_count + sample
        configuration, queue, vjob_of_vm = build_instance(vm_count, seed=seed)
        decision = ConsolidationDecisionModule().decide(configuration, queue)
        states = dict(decision.vm_states)

        cold_solver = ContextSwitchOptimizer(
            timeout=timeout, first_solution_only=True
        )
        engine = RepairOptimizer(
            ContextSwitchOptimizer(timeout=timeout, first_solution_only=True),
            timeout=timeout,
            halo=halo,
        )
        # Warm-up round: the cold start that seeds the previous assignment.
        warm = engine.optimize(configuration, states, vjob_of_vm=vjob_of_vm)
        current = warm.target

        rng = random.Random(seed)
        victims_per_round = max(1, math.ceil(vm_count * churn))
        round_records = []
        for _ in range(rounds):
            running = sorted(
                vm
                for vm in current.vm_names
                if current.state_of(vm) is VMState.RUNNING
                and states.get(vm) is VMState.RUNNING
            )
            victims = rng.sample(running, min(victims_per_round, len(running)))
            for victim in victims:
                current.set_waiting(victim)

            started = time.monotonic()
            cold_result = cold_solver.optimize(
                current, states, vjob_of_vm=vjob_of_vm
            )
            cold_seconds = time.monotonic() - started

            engine.mark_dirty(victims)
            started = time.monotonic()
            repaired = engine.optimize(current, states, vjob_of_vm=vjob_of_vm)
            repair_seconds = time.monotonic() - started

            # Repaired plans must be exactly as trustworthy as cold ones.
            repaired.plan.check_reaches(repaired.target)
            assert repaired.target.is_viable()
            for victim in victims:
                assert repaired.target.state_of(victim) is VMState.RUNNING

            round_records.append(
                {
                    "victims": len(victims),
                    "mode": repaired.mode,
                    "dirty_count": repaired.dirty_count,
                    "frozen_count": repaired.frozen_count,
                    "cold_seconds": round(cold_seconds, 6),
                    "repair_seconds": round(repair_seconds, 6),
                    "cold_cost": cold_result.cost,
                    "repair_cost": repaired.cost,
                    "speedup": round(cold_seconds / repair_seconds, 2)
                    if repair_seconds
                    else None,
                }
            )
            current = repaired.target

        ratios = [r["speedup"] for r in round_records if r["speedup"] is not None]
        tier_samples.append(
            {
                "seed": seed,
                "rounds": round_records,
                "repair_rounds": sum(
                    1 for r in round_records if r["mode"] == "repair"
                ),
                "median": {
                    "cold_seconds": round(
                        statistics.median(
                            r["cold_seconds"] for r in round_records
                        ),
                        6,
                    ),
                    "repair_seconds": round(
                        statistics.median(
                            r["repair_seconds"] for r in round_records
                        ),
                        6,
                    ),
                    "speedup": round(statistics.median(ratios), 2)
                    if ratios
                    else None,
                },
            }
        )

    paired = [
        s["median"]["speedup"]
        for s in tier_samples
        if s["median"]["speedup"] is not None
    ]
    return {
        "vm_count": vm_count,
        "churn": churn,
        "rounds": rounds,
        "halo": halo,
        "timeout_seconds": timeout,
        "samples": tier_samples,
        "median": {
            "cold_seconds": round(
                statistics.median(
                    s["median"]["cold_seconds"] for s in tier_samples
                ),
                6,
            ),
            "repair_seconds": round(
                statistics.median(
                    s["median"]["repair_seconds"] for s in tier_samples
                ),
                6,
            ),
            "speedup": round(statistics.median(paired), 2) if paired else None,
        },
    }


def run(
    tiers: Sequence[Sequence[float]] = TIERS,
    samples: int = SAMPLES_PER_TIER,
    timeout: float = TIMEOUT_S,
    rounds: int = ROUNDS,
    halo: int = HALO,
) -> dict:
    """Run every tier and return the full result document."""
    return {
        "methodology": (
            "seeded churn rounds on one generated fleet per sample; each "
            "round knocks ~churn of the running VMs to Waiting and replans "
            "the identical perturbed configuration cold (monolithic) and "
            "incrementally (repair, warm-started on the previous round); "
            "speedup is the per-round cold/repair wall-clock ratio, "
            "aggregated as paired medians"
        ),
        "tiers": [
            run_tier(
                int(vm_count),
                churn,
                samples=samples,
                timeout=timeout,
                rounds=rounds,
                halo=halo,
            )
            for vm_count, churn in tiers
        ],
    }


def largest_tier_speedup(results: dict) -> Optional[float]:
    """Median speedup of the largest tier — what the CI gate checks."""
    tier = max(results["tiers"], key=lambda t: t["vm_count"])
    return tier["median"]["speedup"]


def format_results(results: dict) -> str:
    lines = [
        "Repair vs cold replanning under churn "
        "(paired rounds on identical perturbed configurations)",
        f"{'VMs':>5}  {'churn':>6}  {'cold (s)':>9}  {'repair (s)':>10}  "
        f"{'speedup':>8}",
    ]
    for tier in results["tiers"]:
        median = tier["median"]
        lines.append(
            f"{tier['vm_count']:>5}  {tier['churn']:>6.0%}  "
            f"{median['cold_seconds']:>9.3f}  "
            f"{median['repair_seconds']:>10.3f}  "
            f"{median['speedup'] or float('nan'):>7.2f}x"
        )
    return "\n".join(lines)


def bench_repair_smoke():
    """One-sample smoke of the smallest tier, for ``pytest benchmarks``."""
    results = run(tiers=(TIERS[0],), samples=1, rounds=2)
    print()
    print(format_results(results))
    sample = results["tiers"][0]["samples"][0]
    assert sample["repair_rounds"] >= 1
    for record in sample["rounds"]:
        assert record["mode"] in ("repair", "full")
        assert record["repair_seconds"] > 0


if __name__ == "__main__":
    full = run()
    print(format_results(full))
    print(json.dumps(full, indent=2))
