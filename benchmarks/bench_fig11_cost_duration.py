"""Figure 11 — cost and duration of the context switches of the cluster run.

Replays the Section 5.2 campaign (8 vjobs of 9 VMs on 11 nodes) under the
Entropy loop and prints, for every cluster-wide context switch performed, its
cost (Section 4.2 model) and its wall-clock duration on the simulated testbed.

The shape to check (paper): switches that only run/stop/migrate VMs have a
small cost and complete in seconds; switches that also suspend and resume VMs
cost much more and take minutes; cost and duration grow together; most resumes
happen on the node that performed the suspend (locality).
"""

from __future__ import annotations

from repro.analysis.metrics import cost_duration_pairs, switch_statistics
from repro.analysis.report import format_fraction, format_seconds, series


def bench_figure11_cost_duration(benchmark, entropy_run):
    pairs = benchmark(cost_duration_pairs, entropy_run.switches)

    rows = []
    for record in entropy_run.switches:
        if not record.action_count:
            continue
        rows.append(
            (
                f"{record.time / 60:.1f}",
                record.cost,
                format_seconds(record.duration),
                record.runs,
                record.stops,
                record.migrations,
                record.suspends,
                record.resumes,
                record.local_resumes,
            )
        )
    print()
    print(series(
        "Figure 11 — cost and duration of each cluster-wide context switch",
        ["minute", "cost", "duration", "run", "stop", "migr", "susp", "res", "res local"],
        rows,
    ))

    stats = switch_statistics(entropy_run.switches)
    print(
        f"{stats.count} context switches, average duration "
        f"{format_seconds(stats.average_duration)}, max cost {stats.max_cost}, "
        f"local resumes {format_fraction(stats.local_resume_fraction)}"
    )

    assert stats.count >= 3
    # cheap switches are fast, expensive switches are slow
    cheap = [duration for cost, duration in pairs if cost == 0]
    expensive = [duration for cost, duration in pairs if cost >= 2048]
    if cheap and expensive:
        assert max(cheap) <= min(expensive) + 60.0
    # suspends/resumes only appear in the costly switches
    for record in entropy_run.switches:
        if record.suspends or record.resumes:
            assert record.cost > 0
    # resume locality: the cost function favours resuming where the suspend
    # happened (21 of 28 resumes in the paper)
    if stats.total_resumes:
        assert stats.local_resume_fraction >= 0.5
