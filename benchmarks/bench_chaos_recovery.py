"""Chaos recovery — fault-injected churn campaigns through the control loop.

The fault subsystem (``repro.sim.faults``) turns the reproduction from a
replay harness into a system that can be stress-tested: this benchmark runs
seeded chaos campaigns — churn-arriving vjobs on a heterogeneous fleet, one
node crashing mid-run, stochastic migration failures — and records how the
control loop absorbs them:

* each sample runs the *same* scenario twice, fault-free and under the fault
  schedule, on freshly generated workloads (paired seeds, so the comparison
  is apples-to-apples);
* ``repair_latency`` measures crash-to-running recovery of the knocked-out
  vjobs, ``wasted_migrations`` counts aborted migration attempts,
  ``lost_vjobs`` must be 0 (the loop may never drop work), and
  ``makespan_inflation`` is the fractional slowdown the faults cost;
* ``wall_seconds`` times the chaotic control-loop run itself, so the
  scenario engine's own overhead stays on the performance trajectory.

Run standalone (``python benchmarks/bench_chaos_recovery.py``) for the full
sweep, or through ``benchmarks/harness.py`` which records the results into
``BENCH_PR3.json``.  There is also a pytest entry point
(``bench_chaos_recovery_smoke``) covering the smallest tier.
"""

from __future__ import annotations

import json
import statistics
import time
from typing import Optional, Sequence

from repro import FaultSchedule, Scenario
from repro.analysis import makespan_inflation, recovery_statistics
from repro.workloads import ChurnGenerator, ProblemClass, heterogeneous_nodes

#: (node_count, vjob_count) of each tier.
TIERS: tuple[tuple[int, int], ...] = ((5, 5), (8, 10), (12, 16))
#: Seeded samples per tier.
SAMPLES_PER_TIER = 3
#: CP budget per switch — generous, the instances are small enough that the
#: budget never triggers and the runs stay deterministic.
OPTIMIZER_TIMEOUT_S = 10.0
#: Crash time as a fraction of the expected busy window.
CRASH_AT_S = 120.0
#: Stochastic migration-failure probability of the chaos runs.
MIGRATION_FAILURE_RATE = 0.1


def _build_scenario(
    node_count: int,
    vjob_count: int,
    seed: int,
    faults: Optional[FaultSchedule],
) -> Scenario:
    generator = ChurnGenerator(
        seed=seed,
        mean_interarrival_s=45.0,
        vm_count_choices=(2, 3),
        problem_classes=(ProblemClass.W,),
    )
    return Scenario(
        nodes=heterogeneous_nodes(node_count, seed=seed),
        workloads=generator.workloads(vjob_count),
        policy="consolidation",
        optimizer_timeout=OPTIMIZER_TIMEOUT_S,
        faults=faults,
        sla_factor=10.0,
    )


def _fault_schedule(node_count: int, seed: int) -> FaultSchedule:
    """One mid-run crash of a busy node plus stochastic migration failures."""
    schedule = FaultSchedule(
        migration_failure_rate=MIGRATION_FAILURE_RATE, seed=seed
    )
    schedule.node_crash(f"node-{seed % node_count}", at=CRASH_AT_S)
    return schedule


def run_sample(node_count: int, vjob_count: int, seed: int) -> dict:
    baseline = _build_scenario(node_count, vjob_count, seed, faults=None).run()

    chaotic_scenario = _build_scenario(
        node_count, vjob_count, seed, faults=_fault_schedule(node_count, seed)
    )
    started = time.perf_counter()
    chaotic = chaotic_scenario.run()
    wall = time.perf_counter() - started

    stats = recovery_statistics(chaotic)
    return {
        "seed": seed,
        "wall_seconds": round(wall, 4),
        "baseline_makespan": round(baseline.makespan, 2),
        "chaotic_makespan": round(chaotic.makespan, 2),
        "makespan_inflation": round(
            makespan_inflation(baseline.makespan, chaotic.makespan), 4
        ),
        "fault_count": stats.fault_count,
        "repaired_vjobs": stats.repaired_vjobs,
        "mean_repair_latency": round(stats.mean_repair_latency, 2),
        "max_repair_latency": round(stats.max_repair_latency, 2),
        "wasted_migrations": stats.wasted_migrations,
        "lost_vjobs": stats.lost_vjobs,
        "sla_violations": stats.sla_violations,
        "switches": chaotic.switch_count,
    }


def run_tier(node_count: int, vjob_count: int, samples: int) -> dict:
    tier_samples = [
        run_sample(node_count, vjob_count, seed=100 * node_count + index)
        for index in range(samples)
    ]
    return {
        "node_count": node_count,
        "vjob_count": vjob_count,
        "samples": tier_samples,
        "median": {
            "wall_seconds": round(
                statistics.median(s["wall_seconds"] for s in tier_samples), 4
            ),
            "makespan_inflation": round(
                statistics.median(s["makespan_inflation"] for s in tier_samples),
                4,
            ),
            "mean_repair_latency": round(
                statistics.median(
                    s["mean_repair_latency"] for s in tier_samples
                ),
                2,
            ),
        },
        "total_lost_vjobs": sum(s["lost_vjobs"] for s in tier_samples),
    }


def run(
    tiers: Sequence[tuple[int, int]] = TIERS,
    samples: int = SAMPLES_PER_TIER,
) -> dict:
    """Run every tier and return the full result document."""
    return {
        "methodology": (
            "paired fault-free vs chaos runs on identical seeded churn "
            "workloads; one node crash at t=120s plus 10% migration-failure "
            "rate; lost vjobs must stay 0"
        ),
        "crash_at_seconds": CRASH_AT_S,
        "migration_failure_rate": MIGRATION_FAILURE_RATE,
        "tiers": [
            run_tier(node_count, vjob_count, samples=samples)
            for node_count, vjob_count in tiers
        ],
    }


def format_results(results: dict) -> str:
    lines = [
        "Chaos recovery - crash + churn campaigns through the control loop",
        f"{'nodes':>5}  {'vjobs':>5}  {'wall (s)':>9}  {'inflation':>9}  "
        f"{'repair (s)':>10}  {'lost':>4}",
    ]
    for tier in results["tiers"]:
        median = tier["median"]
        lines.append(
            f"{tier['node_count']:>5}  {tier['vjob_count']:>5}  "
            f"{median['wall_seconds']:>9.3f}  "
            f"{median['makespan_inflation']:>8.1%}  "
            f"{median['mean_repair_latency']:>10.1f}  "
            f"{tier['total_lost_vjobs']:>4}"
        )
    return "\n".join(lines)


def bench_chaos_recovery_smoke():
    """One-sample smoke of the smallest tier, for ``pytest benchmarks``."""
    results = run(tiers=(TIERS[0],), samples=1)
    print()
    print(format_results(results))
    tier = results["tiers"][0]
    assert tier["total_lost_vjobs"] == 0
    sample = tier["samples"][0]
    assert sample["fault_count"] >= 1
    assert sample["repaired_vjobs"] >= 0


if __name__ == "__main__":
    full = run()
    print(format_results(full))
    print(json.dumps(full, indent=2))
