"""Headline result — total completion time, static allocation vs Entropy.

The paper reports that the campaign needs ~250 minutes under a static
allocation and ~150 minutes with dynamic consolidation and cluster-wide
context switches (a ~40 % reduction), with context switches lasting about
70 seconds on average.  This benchmark reproduces the comparison on the
simulated testbed; the absolute minutes differ (synthetic NASGrid traces, a
calibrated duration model) but the ordering and the order of magnitude of the
reduction must hold.
"""

from __future__ import annotations

from repro.analysis.metrics import makespan_reduction, switch_statistics
from repro.analysis.report import format_fraction, format_seconds, series


def bench_headline_makespan(benchmark, entropy_run, static_run):
    reduction = benchmark(makespan_reduction, static_run.makespan, entropy_run.makespan)
    stats = switch_statistics(entropy_run.switches)

    rows = [
        ("total completion time", f"{static_run.makespan / 60:.0f} min", f"{entropy_run.makespan / 60:.0f} min"),
        ("completed vjobs", len(static_run.completion_times), len(entropy_run.completion_times)),
        ("context switches", "-", stats.count),
        ("average switch duration", "-", format_seconds(stats.average_duration)),
        ("longest switch", "-", format_seconds(stats.max_duration)),
    ]
    print()
    print(series(
        "Headline — FCFS static allocation vs Entropy (paper: 250 min vs 150 min)",
        ["metric", "FCFS", "Entropy"],
        rows,
    ))
    print(f"completion time reduction: {format_fraction(reduction)} (paper: ~40%)")

    # every vjob completes under both strategies
    assert len(entropy_run.completion_times) == 8
    assert len(static_run.completion_times) == 8
    # Entropy wins by a sizeable margin
    assert reduction >= 0.15
    # context switches stay short relative to the campaign
    assert stats.average_duration <= 300.0
