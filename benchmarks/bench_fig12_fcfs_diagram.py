"""Figure 12 — allocation diagram of the FCFS (static allocation) scheduler.

Schedules the same campaign (8 vjobs of 9 VMs) with the FCFS + EASY baseline:
each vjob books one processing unit per VM plus its memory for its whole
duration.  The diagram lists when each vjob starts and ends and how many vjobs
run concurrently — on the 22-CPU cluster at most two 9-VM vjobs overlap, which
is why the static campaign stretches over hours.
"""

from __future__ import annotations

from repro.analysis.report import series


def _diagram(static_run):
    rows = []
    for allocation in static_run.schedule.allocations:
        rows.append(
            (
                allocation.job.name,
                allocation.job.cpus,
                f"{allocation.job.memory / 1024:.1f} GB",
                f"{allocation.start / 60:.1f}",
                f"{allocation.end / 60:.1f}",
                f"{allocation.wait_time / 60:.1f}",
            )
        )
    return rows


def bench_figure12_fcfs_allocation(benchmark, static_run, campaign_nodes):
    rows = benchmark(_diagram, static_run)

    print()
    print(series(
        "Figure 12 — FCFS static allocation diagram (minutes)",
        ["vjob", "booked cpus", "booked memory", "start", "end", "wait"],
        rows,
    ))
    print(f"FCFS total completion time: {static_run.makespan / 60:.0f} minutes")

    total_cpus = sum(node.cpu_capacity for node in campaign_nodes)
    # static allocation: booked CPUs never exceed the cluster capacity
    for sample_time in range(0, int(static_run.makespan), 600):
        booked = sum(
            a.job.cpus
            for a in static_run.schedule.allocations
            if a.start <= sample_time < a.end
        )
        assert booked <= total_cpus
    # every vjob eventually runs, in submission order for equal priorities
    assert len(static_run.schedule.allocations) == 8
    starts = [static_run.schedule.allocation_of(f"vjob{i}").start for i in range(8)]
    assert starts[0] == 0.0
    assert static_run.makespan > max(
        a.job.duration for a in static_run.schedule.allocations
    )
