"""Recorded benchmark harness — runs the bench suite and emits ``BENCH_*.json``.

The repository keeps a performance trajectory across PRs: every harness run
executes the figure/table benchmarks (as a timed pytest pass per module), the
solver scaling sweep (``bench_solver_scaling.py``), the chaos recovery
campaigns (``bench_chaos_recovery.py``), the placement-constraint overhead
sweep (``bench_constraints.py``), the partitioned-solve sweep
(``bench_partitioning.py``), the operator-service overhead measurement
(``bench_service_overhead.py``), the repair-vs-cold replanning sweep
(``bench_repair.py``), the span-tracing overhead measurement
(``bench_trace_overhead.py``) and the datacenter-tier model-layer sweep
(``bench_model_scale.py``), and writes a single JSON document with the
numbers.  The output path is *not* hard-coded per PR any more: pass
``-o/--output`` or set the ``BENCH_OUTPUT`` environment variable (default:
``BENCH_PR10.json`` at the repository root, the committed snapshot for this
PR; ``BENCH_PR2.json``..``BENCH_PR9.json`` stay as previous points of the
trajectory).  CI re-runs the smallest tiers as a smoke job and uploads the
fresh document as an artifact.

Usage::

    python benchmarks/harness.py                 # full sweep -> $BENCH_OUTPUT
                                                 # (default BENCH_PR9.json)
    python benchmarks/harness.py --quick         # smallest tiers, 1 sample,
                                                 # figure benches skipped
    python benchmarks/harness.py --tiers 200 --samples 5 --timeout 30
    python benchmarks/harness.py -o /tmp/bench.json

The solver-scaling section reports, per tier, the median search time of the
event-driven engine and of the retained naive-fixpoint reference engine, and
their ratio (``speedup``); the chaos-recovery section reports the control
loop's repair latency, makespan inflation and lost-vjob count under a crash +
churn schedule; the constraints section reports the constrained vs
unconstrained solve overhead of the placement-constraint catalog (< 2x on
the 200-VM tier is the PR4 acceptance gate); the partitioning section
reports the partitioned vs monolithic end-to-end solve latency on exact
fence-partitioned instances (>= 1.5x on the 400-VM / 4-zone tier is the PR5
acceptance gate); the service-overhead section reports the round-latency
share of the operator service's instrumentation (< 5 % is the PR6
acceptance gate); the repair section reports the incremental repair
engine's per-round solve latency against the cold monolithic solve under
seeded churn (>= 2x on the 200-VM / 10 %-churn tier is the PR7 acceptance
gate); the trace-overhead section reports the round-latency share of the
:mod:`repro.obs` span tracer on a traced run (< 5 % is the PR9 acceptance
gate); the model-scale section reports the per-round non-solve overhead
(observe + partition + merge) of the indexed model layer against the
retained naive oracles on 5k/20k/50k-VM fenced fleets (>= 5x on the 5k
tier is the PR10 acceptance gate).  See ``docs/PERFORMANCE.md`` for how to
read the document.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = Path(__file__).resolve().parent
#: One knob instead of a per-PR patch: ``-o/--output`` or ``BENCH_OUTPUT``.
DEFAULT_OUTPUT = REPO_ROOT / os.environ.get("BENCH_OUTPUT", "BENCH_PR10.json")
#: --quick runs write here by default so a local smoke never clobbers the
#: committed full-sweep snapshot.
QUICK_OUTPUT = REPO_ROOT / "BENCH_smoke.json"

sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(BENCH_DIR))

import bench_chaos_recovery  # noqa: E402  (path set up above)
import bench_constraints  # noqa: E402
import bench_model_scale  # noqa: E402
import bench_partitioning  # noqa: E402
import bench_repair  # noqa: E402
import bench_service_overhead  # noqa: E402
import bench_solver_scaling  # noqa: E402
import bench_trace_overhead  # noqa: E402

#: Benchmarks run natively by this harness rather than as pytest modules.
_NATIVE_MODULES = (
    "bench_solver_scaling.py",
    "bench_chaos_recovery.py",
    "bench_constraints.py",
    "bench_model_scale.py",
    "bench_partitioning.py",
    "bench_repair.py",
    "bench_service_overhead.py",
    "bench_trace_overhead.py",
)


def figure_bench_modules() -> list[Path]:
    """Every figure/table benchmark driver, excluding the sweeps run
    natively and this harness itself."""
    return sorted(
        path
        for path in BENCH_DIR.glob("bench_*.py")
        if path.name not in _NATIVE_MODULES
    )


def run_figure_benches(timeout: float = 900.0) -> list[dict]:
    """Run each figure benchmark as its own pytest process and time it."""
    records = []
    for module in figure_bench_modules():
        started = time.monotonic()
        try:
            completed = subprocess.run(
                [sys.executable, "-m", "pytest", str(module), "-q", "--no-header"],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                timeout=timeout,
            )
            status = "passed" if completed.returncode == 0 else "failed"
        except subprocess.TimeoutExpired:
            status = "timeout"
        records.append(
            {
                "module": module.name,
                "status": status,
                "seconds": round(time.monotonic() - started, 2),
            }
        )
        print(f"  {module.name:<40} {status:>8} {records[-1]['seconds']:>8.1f}s")
    return records


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o", "--output", type=Path, default=None,
        help=f"output JSON path (default: {DEFAULT_OUTPUT.name}, or "
             f"{QUICK_OUTPUT.name} with --quick)",
    )
    parser.add_argument(
        "--tiers", type=int, nargs="+", default=list(bench_solver_scaling.TIERS),
        help="VM counts of the scaling sweep",
    )
    parser.add_argument(
        "--samples", type=int, default=bench_solver_scaling.SAMPLES_PER_TIER,
        help="seeded samples per tier",
    )
    parser.add_argument(
        "--timeout", type=float, default=bench_solver_scaling.TIMEOUT_S,
        help="wall-clock safety cap per solve, seconds",
    )
    parser.add_argument(
        "--node-limit", type=int, default=None,
        help="override the per-tier node budget (default: calibrated per tier)",
    )
    parser.add_argument(
        "--skip-figures", action="store_true",
        help="skip the figure/table benchmark modules",
    )
    parser.add_argument(
        "--chaos-samples", type=int, default=bench_chaos_recovery.SAMPLES_PER_TIER,
        help="seeded samples per chaos-recovery tier",
    )
    parser.add_argument(
        "--skip-chaos", action="store_true",
        help="skip the chaos-recovery campaigns",
    )
    parser.add_argument(
        "--constraint-tiers", type=int, nargs="+",
        default=list(bench_constraints.TIERS),
        help="VM counts of the constraint-overhead sweep",
    )
    parser.add_argument(
        "--skip-constraints", action="store_true",
        help="skip the constraint-overhead sweep",
    )
    parser.add_argument(
        "--partition-tiers", type=int, nargs="+",
        default=[vms for _, vms in bench_partitioning.TIERS],
        help="total VM counts of the partitioned-solve sweep (each selects "
             "its (zones, VMs) tier from bench_partitioning.TIERS)",
    )
    parser.add_argument(
        "--partition-samples", type=int,
        default=bench_partitioning.SAMPLES_PER_TIER,
        help="seeded samples per partitioning tier",
    )
    parser.add_argument(
        "--skip-partitioning", action="store_true",
        help="skip the partitioned-solve sweep",
    )
    parser.add_argument(
        "--partition-zone-executor", default="process",
        choices=("auto", "process", "serial"),
        help="zone executor for the partitioned-solve sweep; the default "
             "forces the process pool so the measurement is the parallel "
             "path regardless of how 'auto' would resolve on the host",
    )
    parser.add_argument(
        "--min-partition-speedup", type=float, default=None,
        help="fail (exit 1) when the largest partitioning tier's median "
             "partitioned-vs-monolithic speedup drops below this threshold "
             "— the PR5 acceptance gate (>= 1.5x on the 400-VM/4-zone tier)",
    )
    parser.add_argument(
        "--max-constraint-overhead", type=float, default=None,
        help="fail (exit 1) when the largest constraint tier's median "
             "constrained/unconstrained solve ratio exceeds this threshold "
             "— the PR4 acceptance gate (< 2x on the 200-VM tier)",
    )
    parser.add_argument(
        "--repair-tiers", type=int, nargs="+",
        default=[vms for vms, _ in bench_repair.TIERS],
        help="VM counts of the repair-vs-cold replanning sweep (each "
             "selects its (VMs, churn) tier from bench_repair.TIERS)",
    )
    parser.add_argument(
        "--repair-samples", type=int, default=bench_repair.SAMPLES_PER_TIER,
        help="seeded samples per repair tier",
    )
    parser.add_argument(
        "--skip-repair", action="store_true",
        help="skip the repair-vs-cold replanning sweep",
    )
    parser.add_argument(
        "--min-repair-speedup", type=float, default=None,
        help="fail (exit 1) when the largest repair tier's median "
             "repair-vs-cold per-round speedup drops below this threshold "
             "— the PR7 acceptance gate (>= 2x on the 200-VM / 10 %%-churn "
             "tier)",
    )
    parser.add_argument(
        "--service-samples", type=int, default=bench_service_overhead.SAMPLES,
        help="instrumented runs measured by the service-overhead sweep",
    )
    parser.add_argument(
        "--skip-service", action="store_true",
        help="skip the operator-service overhead measurement",
    )
    parser.add_argument(
        "--max-service-overhead", type=float, default=None,
        help="fail (exit 1) when the operator service's round-latency "
             "overhead exceeds this percentage — the PR6 acceptance gate "
             "(< 5 %%)",
    )
    parser.add_argument(
        "--trace-samples", type=int, default=bench_trace_overhead.SAMPLES,
        help="traced runs measured by the trace-overhead sweep",
    )
    parser.add_argument(
        "--skip-trace", action="store_true",
        help="skip the span-tracing overhead measurement",
    )
    parser.add_argument(
        "--max-trace-overhead", type=float, default=None,
        help="fail (exit 1) when the span tracer's round-latency overhead "
             "exceeds this percentage — the PR9 acceptance gate (< 5 %%)",
    )
    parser.add_argument(
        "--model-tiers", type=int, nargs="+",
        default=list(bench_model_scale.TIERS),
        help="VM counts of the datacenter-tier model-layer sweep",
    )
    parser.add_argument(
        "--model-rounds", type=int, default=bench_model_scale.ROUNDS,
        help="measured rounds per model-scale tier and lane",
    )
    parser.add_argument(
        "--skip-model", action="store_true",
        help="skip the model-layer scale sweep",
    )
    parser.add_argument(
        "--min-model-speedup", type=float, default=None,
        help="fail (exit 1) when the per-round non-solve speedup of the "
             "indexed model layer over the naive oracles drops below this "
             "threshold on the largest naive-measured tier — the PR10 "
             "acceptance gate (>= 5x on the 5k-VM tier)",
    )
    parser.add_argument(
        "--max-model-round-ms", type=float, default=None,
        help="fail (exit 1) when the indexed lane's per-round overhead on "
             "the smallest model tier exceeds this many milliseconds; "
             "skipped with a notice on slow runners (calibrated like the "
             "partition gate's core-count skip)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke mode: smallest tiers, one sample, figures skipped",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="fail (exit 1) when the *largest* benchmarked tier's median "
             "speedup over the fixpoint reference drops below this "
             "threshold — the CI regression gate for the event engine "
             "(the largest tier is the least noise-sensitive)",
    )
    args = parser.parse_args(argv)

    chaos_tiers = list(bench_chaos_recovery.TIERS)
    if args.quick:
        args.tiers = [min(args.tiers)]
        args.samples = 1
        args.skip_figures = True
        args.chaos_samples = 1
        chaos_tiers = [min(chaos_tiers)]
        args.constraint_tiers = [min(args.constraint_tiers)]
        args.partition_tiers = [min(args.partition_tiers)]
        args.partition_samples = 1
        args.repair_tiers = [min(args.repair_tiers)]
        args.repair_samples = 1
        args.service_samples = min(args.service_samples, 3)
        args.trace_samples = min(args.trace_samples, 3)
        args.model_tiers = [min(args.model_tiers)]
        args.model_rounds = min(args.model_rounds, 3)
    if args.output is None:
        args.output = QUICK_OUTPUT if args.quick else DEFAULT_OUTPUT

    document = {
        "label": f"{args.output.stem} - recorded benchmark sweep",
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
        "harness": {
            "tiers": args.tiers,
            "samples_per_tier": args.samples,
            "timeout_seconds": args.timeout,
            "node_limit": args.node_limit,
            "quick": args.quick,
        },
    }

    print(f"solver scaling: tiers={args.tiers} samples={args.samples} "
          f"timeout={args.timeout}s")
    document["solver_scaling"] = bench_solver_scaling.run(
        tiers=args.tiers,
        samples=args.samples,
        timeout=args.timeout,
        node_limit=args.node_limit,
    )
    print(bench_solver_scaling.format_results(document["solver_scaling"]))

    if not args.skip_constraints:
        print(f"constraint overhead: tiers={args.constraint_tiers} "
              f"samples={args.samples}")
        document["constraints"] = bench_constraints.run(
            tiers=args.constraint_tiers,
            samples=args.samples,
            timeout=args.timeout,
            node_limit=args.node_limit,
        )
        print(bench_constraints.format_results(document["constraints"]))

    if not args.skip_partitioning:
        available = {tier[1]: tier for tier in bench_partitioning.TIERS}
        unknown = sorted(set(args.partition_tiers) - set(available))
        if unknown:
            # A typo must fail loudly, not silently shrink the sweep (and
            # later crash the gate on an empty tier list).
            print(
                f"ERROR: unknown partition tiers {unknown}; available VM "
                f"counts: {sorted(available)}"
            )
            return 2
        partition_tiers = [
            tier for tier in bench_partitioning.TIERS
            if tier[1] in set(args.partition_tiers)
        ]
        print(f"partitioned solve: tiers={partition_tiers} "
              f"samples={args.partition_samples}")
        document["partitioning"] = bench_partitioning.run(
            tiers=partition_tiers,
            samples=args.partition_samples,
            timeout=args.timeout,
            zone_executor=args.partition_zone_executor,
        )
        print(bench_partitioning.format_results(document["partitioning"]))

    if not args.skip_repair:
        available_repair = {vms: (vms, churn)
                            for vms, churn in bench_repair.TIERS}
        unknown = sorted(set(args.repair_tiers) - set(available_repair))
        if unknown:
            # A typo must fail loudly, not silently shrink the sweep (and
            # later crash the gate on an empty tier list).
            print(
                f"ERROR: unknown repair tiers {unknown}; available VM "
                f"counts: {sorted(available_repair)}"
            )
            return 2
        repair_tiers = [
            tier for tier in bench_repair.TIERS
            if tier[0] in set(args.repair_tiers)
        ]
        print(f"repair replanning: tiers={repair_tiers} "
              f"samples={args.repair_samples}")
        document["repair"] = bench_repair.run(
            tiers=repair_tiers,
            samples=args.repair_samples,
            timeout=args.timeout,
        )
        print(bench_repair.format_results(document["repair"]))

    if not args.skip_service:
        print(f"service overhead: samples={args.service_samples}")
        document["service_overhead"] = bench_service_overhead.run(
            samples=args.service_samples
        )
        print(bench_service_overhead.format_results(document["service_overhead"]))

    if not args.skip_trace:
        print(f"trace overhead: samples={args.trace_samples}")
        document["trace_overhead"] = bench_trace_overhead.run(
            samples=args.trace_samples
        )
        print(bench_trace_overhead.format_results(document["trace_overhead"]))

    if not args.skip_model:
        print(f"model scale: tiers={args.model_tiers} "
              f"rounds={args.model_rounds}")
        document["model_scale"] = bench_model_scale.run(
            tiers=args.model_tiers, rounds=args.model_rounds
        )
        print(bench_model_scale.format_results(document["model_scale"]))

    if not args.skip_chaos:
        print(f"chaos recovery: tiers={chaos_tiers} "
              f"samples={args.chaos_samples}")
        document["chaos_recovery"] = bench_chaos_recovery.run(
            tiers=chaos_tiers, samples=args.chaos_samples
        )
        print(bench_chaos_recovery.format_results(document["chaos_recovery"]))

    if not args.skip_figures:
        print("figure benchmarks:")
        document["figure_benches"] = run_figure_benches()

    args.output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")

    if args.min_speedup is not None:
        gate_tier = max(
            document["solver_scaling"]["tiers"], key=lambda tier: tier["vm_count"]
        )
        speedup = gate_tier["median"]["speedup"] or 0
        if speedup < args.min_speedup:
            print(
                f"REGRESSION: {gate_tier['vm_count']}-VM tier speedup "
                f"{speedup}x is below the {args.min_speedup}x gate"
            )
            return 1
        print(
            f"speedup gate ok: {gate_tier['vm_count']}-VM tier at "
            f"{speedup}x >= {args.min_speedup}x"
        )

    if args.max_constraint_overhead is not None:
        if "constraints" not in document:
            # An explicitly requested gate must never silently no-op.
            print(
                "REGRESSION GATE ERROR: --max-constraint-overhead was given "
                "but the constraints sweep did not run (--skip-constraints?)"
            )
            return 1
        overhead = bench_constraints.largest_tier_overhead(
            document["constraints"]
        )
        if overhead is None or overhead > args.max_constraint_overhead:
            print(
                f"REGRESSION: constrained solve overhead {overhead}x exceeds "
                f"the {args.max_constraint_overhead}x gate"
            )
            return 1
        print(
            f"constraint overhead gate ok: {overhead}x <= "
            f"{args.max_constraint_overhead}x"
        )

    if args.min_partition_speedup is not None:
        if "partitioning" not in document:
            # An explicitly requested gate must never silently no-op.
            print(
                "REGRESSION GATE ERROR: --min-partition-speedup was given "
                "but the partitioning sweep did not run "
                "(--skip-partitioning?)"
            )
            return 1
        partitioning = document["partitioning"]
        gate_tier = max(partitioning["tiers"], key=lambda t: t["vm_count"])
        cores = partitioning.get("cpu_count") or 1
        resolved = partitioning.get("resolved_zone_executor")
        if cores >= gate_tier["zones"] and resolved != "process":
            # On a capable host the gate must measure the parallel path:
            # enforcing a *parallel*-speedup threshold against a serial
            # measurement is a misconfiguration, not a skip.
            print(
                "REGRESSION GATE ERROR: --min-partition-speedup was given "
                f"but the sweep ran with zone executor {resolved!r}; rerun "
                "with --partition-zone-executor process"
            )
            return 1
        if cores < gate_tier["zones"]:
            # Unlike the other gates this one measures *parallel* speedup,
            # which needs real cores: on a host with fewer cores than zones
            # the ratio reflects the runner, not the code — skip loudly
            # rather than flake.
            print(
                f"partition speedup gate SKIPPED: host has {cores} CPU "
                f"core(s), fewer than the gate tier's {gate_tier['zones']} "
                "zones — parallel speedup is not measurable here"
            )
        else:
            speedup = bench_partitioning.largest_tier_speedup(partitioning)
            if speedup is None or speedup < args.min_partition_speedup:
                print(
                    f"REGRESSION: partitioned solve speedup {speedup}x is "
                    f"below the {args.min_partition_speedup}x gate"
                )
                return 1
            print(
                f"partition speedup gate ok: {speedup}x >= "
                f"{args.min_partition_speedup}x"
            )

    if args.max_service_overhead is not None:
        if "service_overhead" not in document:
            # An explicitly requested gate must never silently no-op.
            print(
                "REGRESSION GATE ERROR: --max-service-overhead was given "
                "but the service-overhead sweep did not run (--skip-service?)"
            )
            return 1
        overhead = bench_service_overhead.overhead_percent(
            document["service_overhead"]
        )
        if overhead > args.max_service_overhead:
            print(
                f"REGRESSION: service round-latency overhead {overhead} % "
                f"exceeds the {args.max_service_overhead} % gate"
            )
            return 1
        print(
            f"service overhead gate ok: {overhead} % <= "
            f"{args.max_service_overhead} %"
        )

    if args.max_trace_overhead is not None:
        if "trace_overhead" not in document:
            # An explicitly requested gate must never silently no-op.
            print(
                "REGRESSION GATE ERROR: --max-trace-overhead was given "
                "but the trace-overhead sweep did not run (--skip-trace?)"
            )
            return 1
        overhead = bench_trace_overhead.overhead_percent(
            document["trace_overhead"]
        )
        if overhead > args.max_trace_overhead:
            print(
                f"REGRESSION: span-tracing round-latency overhead "
                f"{overhead} % exceeds the {args.max_trace_overhead} % gate"
            )
            return 1
        print(
            f"trace overhead gate ok: {overhead} % <= "
            f"{args.max_trace_overhead} %"
        )

    if args.min_repair_speedup is not None:
        if "repair" not in document:
            # An explicitly requested gate must never silently no-op.
            print(
                "REGRESSION GATE ERROR: --min-repair-speedup was given "
                "but the repair sweep did not run (--skip-repair?)"
            )
            return 1
        speedup = bench_repair.largest_tier_speedup(document["repair"])
        if speedup is None or speedup < args.min_repair_speedup:
            print(
                f"REGRESSION: repair replanning speedup {speedup}x is "
                f"below the {args.min_repair_speedup}x gate"
            )
            return 1
        print(
            f"repair speedup gate ok: {speedup}x >= "
            f"{args.min_repair_speedup}x"
        )

    if args.min_model_speedup is not None:
        if "model_scale" not in document:
            # An explicitly requested gate must never silently no-op.
            print(
                "REGRESSION GATE ERROR: --min-model-speedup was given "
                "but the model-scale sweep did not run (--skip-model?)"
            )
            return 1
        speedup = bench_model_scale.gate_speedup(document["model_scale"])
        if speedup is None or speedup < args.min_model_speedup:
            print(
                f"REGRESSION: model-layer per-round speedup {speedup}x is "
                f"below the {args.min_model_speedup}x gate"
            )
            return 1
        print(
            f"model speedup gate ok: {speedup}x >= "
            f"{args.min_model_speedup}x"
        )

    if args.max_model_round_ms is not None:
        if "model_scale" not in document:
            # An explicitly requested gate must never silently no-op.
            print(
                "REGRESSION GATE ERROR: --max-model-round-ms was given "
                "but the model-scale sweep did not run (--skip-model?)"
            )
            return 1
        model = document["model_scale"]
        if bench_model_scale.slow_host(model):
            # Unlike the paired speedup ratio this budget is absolute
            # wall-clock: on a slow runner it reflects the host, not the
            # code — skip loudly rather than flake (the partition gate's
            # core-count pattern).
            print(
                "model round budget gate SKIPPED: runner calibration "
                f"{model['calibration_ms']} ms exceeds "
                f"{bench_model_scale.SLOW_HOST_FACTOR}x the reference "
                f"{model['calibration_reference_ms']} ms — absolute "
                "budgets are not meaningful here"
            )
        else:
            round_ms = bench_model_scale.gate_round_ms(model)
            if round_ms is None or round_ms > args.max_model_round_ms:
                print(
                    f"REGRESSION: indexed model-layer round overhead "
                    f"{round_ms} ms exceeds the "
                    f"{args.max_model_round_ms} ms budget"
                )
                return 1
            print(
                f"model round budget gate ok: {round_ms} ms <= "
                f"{args.max_model_round_ms} ms"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
