"""Span-tracing overhead of :mod:`repro.obs` on the control loop.

Every traced round opens a handful of spans (round, observe, decide, plan,
solve, cp.solve, execute, ...) whose enter/exit cost must stay invisible
next to the planning work itself: < 5 % round-latency overhead is the PR9
acceptance gate, enforced by ``--max-trace-overhead`` in CI.

Methodology (the PR6 jitter-cancelling recipe): a span costs single-digit
microseconds while a round takes about a millisecond, so a traced-vs-bare
wall-clock A/B at CI scale drowns in host jitter.  Instead the harness

* microbenchmarks the per-span enter/exit unit cost in a tight loop with a
  live tracer (the exact code path a traced run executes), and
* runs the seeded scenario traced, counts the spans and events its trace
  actually recorded, and reports ``span_count x unit_cost`` as a fraction
  of the remaining (un-instrumented) run time.

Numerator and denominator come from the same run, so scheduler noise
cancels instead of swamping the signal.

Runnable standalone::

    python benchmarks/bench_trace_overhead.py
"""

from __future__ import annotations

import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # pragma: no cover - script setup
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api.scenario import Scenario  # noqa: E402
from repro.obs import Tracer, load_trace, span  # noqa: E402
from repro.workloads import ChurnGenerator, ProblemClass, heterogeneous_nodes  # noqa: E402

#: Traced runs measured per sweep.
SAMPLES = 5
#: Fleet size / vjob count of the measured scenario — big enough that a
#: round does real planning work, small enough for a CI smoke lane.
NODE_COUNT = 8
VJOB_COUNT = 16
#: Span enter/exit pairs for the unit-cost microbenchmark.
SPAN_CALLS = 20_000


def _scenario(trace: bool) -> Scenario:
    generator = ChurnGenerator(
        seed=23,
        mean_interarrival_s=30.0,
        vm_count_choices=(2, 3),
        problem_classes=(ProblemClass.W,),
    )
    return Scenario(
        nodes=heterogeneous_nodes(NODE_COUNT, seed=5),
        workloads=generator.workloads(VJOB_COUNT),
        policy="consolidation",
        optimizer_timeout=2.0,
        use_optimizer=False,
        trace=trace,
    )


def _span_microseconds() -> float:
    """Enter/exit cost of one attributed span under a live tracer, in µs."""
    tracer = Tracer(name="bench")
    with tracer.activate():
        started = time.perf_counter()
        for index in range(SPAN_CALLS):
            with span("bench-span", index=index) as unit:
                unit.inc("ticks")
        elapsed = time.perf_counter() - started
    return elapsed / SPAN_CALLS * 1e6


def _trace_weight(trace: dict) -> int:
    """Spans + events recorded by a trace — the unit-cost multiplier."""
    root = load_trace(trace)
    spans = 0
    events = 0
    for node in root.walk():
        spans += 1
        events += len(node.events)
    return spans + events


def run(samples: int = SAMPLES) -> dict:
    """Run the seeded scenario ``samples`` times traced and report the
    tracing cost (recorded span count times the measured per-span unit
    cost) over the bare remainder of the run."""
    totals: list[float] = []
    weights: list[int] = []
    overheads: list[float] = []
    rounds = 0
    span_us = _span_microseconds()
    for _ in range(samples):
        scenario = _scenario(trace=True)
        started = time.perf_counter()
        result = scenario.run()
        total = time.perf_counter() - started
        rounds = len(result.utilization)
        weight = _trace_weight(result.trace or {})
        tracing = weight * span_us * 1e-6
        bare = total - tracing
        totals.append(total)
        weights.append(weight)
        overheads.append(tracing / bare * 100.0 if bare else 0.0)
    median_total = statistics.median(totals)
    median_weight = statistics.median(weights)
    return {
        "samples": samples,
        "nodes": NODE_COUNT,
        "vjobs": VJOB_COUNT,
        "rounds_per_run": rounds,
        "span_us": round(span_us, 3),
        "spans_per_run": int(median_weight),
        "spans_per_round": (
            round(median_weight / rounds, 2) if rounds else 0.0
        ),
        "total_seconds": [round(s, 6) for s in totals],
        "median_total_seconds": round(median_total, 6),
        "overhead_percent": round(statistics.median(overheads), 2),
    }


def overhead_percent(results: dict) -> float:
    return float(results["overhead_percent"])


def format_results(results: dict) -> str:
    return (
        f"trace overhead: {results['spans_per_run']} spans/run "
        f"({results['spans_per_round']:.1f}/round) x "
        f"{results['span_us']:.2f} us/span over "
        f"{results['median_total_seconds']*1000:.1f} ms run -> "
        f"{results['overhead_percent']:+.2f} %"
    )


def bench_trace_overhead() -> None:
    """Pytest entry point: the traced loop must stay within the 5 % PR9
    gate."""
    results = run(samples=3)
    print(format_results(results))
    assert results["overhead_percent"] < 5.0


if __name__ == "__main__":
    print(format_results(run()))
